"""Fault-tolerant trial execution: supervision, retries, and checkpoints.

The paper's accuracy grids (Tables IV–VI) are hundreds of independent
(dataset, attacker, rate, defender, seed) trials; a single diverging trainer
must not throw away hours of cached poison graphs.  This module supplies the
two pieces the runner composes:

:class:`TrialSupervisor`
    Runs one trial callable with a wall-clock deadline, bounded retries with
    exponential backoff and per-attempt reseeding, and converts exhausted
    retries into structured :class:`TrialFailure` records.  Repeated-failure
    *quarantine* ensures a permanently broken method fails once and is
    skipped thereafter instead of burning its retry budget in every row.

:class:`SweepCheckpoint`
    An append-only JSONL journal of completed cells plus poison graphs
    persisted through :mod:`repro.io`, written after every cell so an
    interrupted sweep resumes without re-running attacks.  Cell values are
    stored as JSON floats (``repr``-round-trip exact), so a resumed sweep
    reproduces the uninterrupted table bit for bit.

``BaseException`` subclasses that are not ``Exception`` (``KeyboardInterrupt``,
:class:`~repro.utils.faults.InjectedKill`) always propagate: an operator
abort must stop the sweep, not become a failure record.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

from ..attacks.base import AttackResult
from ..errors import (
    ConfigError,
    DeadlineError,
    DegradedWarning,
    GraphError,
    IntegrityWarning,
    ResourceError,
    TrialError,
)
from ..io import (
    SerializationError,
    journal_record_digest,
    load_attack_result,
    save_attack_result,
)
from ..utils import cancellation, faults
from ..utils.keystore import estimate_nbytes
from ..utils.resources import (
    MAX_DEGRADE_LEVEL,
    degraded_footprint,
    require_free_disk,
    with_disk_retry,
)

__all__ = [
    "RESEED_STRIDE",
    "TrialKey",
    "TrialFailure",
    "TrialPolicy",
    "TrialOutcome",
    "TrialSupervisor",
    "SweepCheckpoint",
]

PathLike = Union[str, Path]

# Odd prime stride separating per-attempt reseeds from the base seed range,
# so retry seeds never collide with another trial's base seed.  Shared by
# the serial runner and the pool workers so a retried trial reseeds
# identically no matter which process runs it.
RESEED_STRIDE = 1_000_003


def _memory_exhaustion(error: BaseException) -> bool:
    """Does ``error`` mean the attempt ran out of memory (ladder-retriable)?"""
    if isinstance(error, MemoryError):
        return True
    return isinstance(error, ResourceError) and error.resource == "memory"


@dataclass(frozen=True)
class TrialKey:
    """Identity of one supervised trial.

    Attack trials leave ``defender``/``seed`` as ``None`` (one attack is
    shared by a whole row); defense trials set both.  ``attacker`` is
    ``"Clean"`` for the unpoisoned row.
    """

    dataset: str
    attacker: str
    rate: float
    defender: Optional[str] = None
    seed: Optional[int] = None

    def label(self) -> str:
        parts = [self.dataset, self.attacker, f"r={self.rate:g}"]
        if self.defender is not None:
            parts.append(self.defender)
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return "/".join(parts)

    def quarantine_key(self) -> tuple:
        """What a permanent failure of this trial poisons.

        A broken defender is broken for every attacker row, so defense
        trials quarantine (dataset, defender); attack trials quarantine
        (dataset, attacker, rate).
        """
        if self.defender is not None:
            return ("defend", self.dataset, self.defender)
        return ("attack", self.dataset, self.attacker, self.rate)


@dataclass(frozen=True)
class TrialFailure:
    """Structured record of a trial that exhausted its retries."""

    key: TrialKey
    attempts: int
    elapsed_seconds: float
    error_type: str
    message: str
    traceback: str = ""

    def summary(self) -> str:
        return (
            f"{self.key.label()}: {self.error_type}: {self.message} "
            f"({self.attempts} attempts, {self.elapsed_seconds:.2f}s)"
        )

    def to_json(self) -> dict:
        return {
            "dataset": self.key.dataset,
            "attacker": self.key.attacker,
            "rate": self.key.rate,
            "defender": self.key.defender,
            "seed": self.key.seed,
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TrialFailure":
        return cls(
            key=TrialKey(
                dataset=data["dataset"],
                attacker=data["attacker"],
                rate=data["rate"],
                defender=data.get("defender"),
                seed=data.get("seed"),
            ),
            attempts=int(data["attempts"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            error_type=data["error_type"],
            message=data["message"],
            traceback=data.get("traceback", ""),
        )


@dataclass(frozen=True)
class TrialPolicy:
    """Retry/deadline policy shared by every trial of a sweep."""

    max_attempts: int = 2
    deadline_seconds: Optional[float] = None
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    # How long a deadline-cancelled trial gets to reach its next poll site
    # and unwind before the supervisor stops waiting for its thread.
    grace_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )
        if self.backoff_seconds < 0:
            raise ConfigError(
                f"backoff_seconds must be non-negative, got {self.backoff_seconds}"
            )
        if self.grace_seconds < 0:
            raise ConfigError(
                f"grace_seconds must be non-negative, got {self.grace_seconds}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return self.backoff_seconds * self.backoff_factor ** (attempt - 1)


@dataclass
class TrialOutcome:
    """Result of :meth:`TrialSupervisor.run`: a value or a failure."""

    key: TrialKey
    value: Any = None
    failure: Optional[TrialFailure] = None
    attempts: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


class TrialSupervisor:
    """Runs trial callables under a :class:`TrialPolicy`.

    The callable receives the (0-based) attempt number so callers can
    reseed per attempt — a diverging initialization should not be retried
    verbatim.  ``sleep`` is injectable so tests can run backoff instantly.
    """

    def __init__(
        self,
        policy: Optional[TrialPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy or TrialPolicy()
        self.failures: list[TrialFailure] = []
        self._sleep = sleep
        self._quarantine: dict[tuple, TrialFailure] = {}

    # ------------------------------------------------------------------
    def quarantined(self, key: TrialKey) -> Optional[TrialFailure]:
        """The failure that quarantined ``key``'s method, if any."""
        return self._quarantine.get(key.quarantine_key())

    def run(self, key: TrialKey, fn: Callable[[int], Any]) -> TrialOutcome:
        """Run ``fn(attempt)`` under the policy; never raises ``Exception``.

        Returns a :class:`TrialOutcome` whose ``failure`` is set when every
        attempt failed; the failure is also appended to :attr:`failures`
        and the trial's method is quarantined.  Non-``Exception``
        ``BaseException`` (operator interrupts) propagate immediately.
        """
        quarantining = self.quarantined(key)
        if quarantining is not None:
            return TrialOutcome(key=key, failure=quarantining)

        started = time.perf_counter()
        last_error: Optional[BaseException] = None
        last_tb = ""
        degrade = 0
        sink = cancellation.current_sink()
        for attempt in range(self.policy.max_attempts):
            # When a mid-trial snapshot exists, run under the attempt it
            # was written for so the resumed trial re-derives the same
            # seeds and splices onto its own trajectory.
            run_attempt = (
                sink.start_attempt(attempt) if sink is not None else attempt
            )
            try:
                # Level 0 is a no-op; after a memory-exhausted attempt the
                # retry runs one rung down the degradation ladder (fewer
                # BLAS threads, smaller candidate block, autodiff engine)
                # instead of repeating the same allocation verbatim.
                with degraded_footprint(degrade):
                    value = self._attempt(key, fn, run_attempt)
                if sink is not None:
                    sink.discard()
                return TrialOutcome(
                    key=key,
                    value=value,
                    attempts=attempt + 1,
                    elapsed_seconds=time.perf_counter() - started,
                )
            except Exception as error:  # noqa: BLE001 — supervision boundary
                last_error = error
                last_tb = traceback.format_exc()
                if _memory_exhaustion(error) and degrade < MAX_DEGRADE_LEVEL:
                    degrade += 1
                    warnings.warn(
                        f"{key.label()}: attempt {attempt + 1} exhausted "
                        f"memory ({error}); retrying at degradation level "
                        f"{degrade}",
                        DegradedWarning,
                        stacklevel=2,
                    )
                # Deadline trips and memory exhaustion are *interruptions*:
                # the snapshot lets the retry resume mid-trial instead of
                # restarting.  Any other failure reseeds, so stale state
                # from the failed trajectory must not leak into it.
                resumable = isinstance(error, DeadlineError) or _memory_exhaustion(
                    error
                )
                if sink is not None and not resumable:
                    sink.discard()
                if attempt + 1 < self.policy.max_attempts:
                    self._sleep(self.policy.backoff_for(attempt + 1))

        failure = TrialFailure(
            key=key,
            attempts=self.policy.max_attempts,
            elapsed_seconds=time.perf_counter() - started,
            error_type=type(last_error).__name__,
            message=str(last_error),
            traceback=last_tb,
        )
        self.failures.append(failure)
        self._quarantine[key.quarantine_key()] = failure
        return TrialOutcome(
            key=key,
            failure=failure,
            attempts=failure.attempts,
            elapsed_seconds=failure.elapsed_seconds,
        )

    def run_or_raise(self, key: TrialKey, fn: Callable[[int], Any]) -> Any:
        """Like :meth:`run` but raises :class:`TrialError` on failure."""
        outcome = self.run(key, fn)
        if outcome.failure is not None:
            raise TrialError(
                outcome.failure.summary(),
                key=key,
                attempts=outcome.failure.attempts,
                elapsed_seconds=outcome.failure.elapsed_seconds,
            )
        return outcome.value

    # ------------------------------------------------------------------
    def _attempt(self, key: TrialKey, fn: Callable[[int], Any], attempt: int) -> Any:
        deadline = self.policy.deadline_seconds
        if deadline is None:
            return fn(attempt)

        # Cooperative deadline: the trial thread inherits the ambient scope
        # (snapshot sink, heartbeat beacon, any outer shutdown token) plus a
        # deadline token.  Poll sites inside the trial observe expiry, write
        # a final snapshot, and raise — so the thread *exits* and is joined
        # instead of being abandoned mid-flight.
        token = cancellation.CancelToken(
            deadline_seconds=deadline,
            parent=cancellation.current_token(),
            name=f"trial-{key.label()}",
        )
        ambient = cancellation.current_scope()
        box: dict[str, Any] = {}
        done = threading.Event()

        def target() -> None:
            try:
                with cancellation.trial_scope(token=token, inherit=ambient):
                    box["value"] = fn(attempt)
            except BaseException as error:  # noqa: BLE001 — re-raised below
                box["error"] = error
            finally:
                done.set()

        worker = threading.Thread(
            target=target, name=f"trial-{key.label()}", daemon=True
        )
        started = time.perf_counter()
        worker.start()
        if done.wait(deadline):
            error = box.get("error")
            if isinstance(error, cancellation.CancelledError) and (
                error.cause == cancellation.CAUSE_DEADLINE
            ):
                pass  # trial observed its own deadline at a poll site
            elif error is not None:
                raise error
            else:
                return box["value"]
        else:
            # Backstop for trials blocked between poll sites: flip the
            # token explicitly (its own deadline has also expired by now)
            # and give the thread a bounded grace period to reach a poll
            # site, write its final snapshot, and unwind.  Only a trial
            # that never polls — a genuine hang in foreign code — is still
            # abandoned (daemon) after the grace join times out.  A value
            # computed past the deadline is discarded either way: the
            # deadline contract beats a lucky late finish.
            token.cancel(
                cancellation.CAUSE_DEADLINE,
                f"trial {key.label()} exceeded its {deadline:g}s deadline",
            )
            worker.join(self.policy.grace_seconds)
        raise DeadlineError(
            f"trial {key.label()} exceeded its {deadline:g}s deadline "
            f"on attempt {attempt + 1}",
            deadline_seconds=deadline,
            key=key,
            attempts=attempt + 1,
            elapsed_seconds=time.perf_counter() - started,
        )


# ---------------------------------------------------------------------------


class SweepCheckpoint:
    """Journal of completed sweep cells plus persisted poison graphs.

    Layout under ``directory``::

        journal.jsonl                    # one JSON record per event
        poison_<dataset>_<attacker>_...  # .npz attack archives (repro.io)

    Journal records are ``{"kind": "cell", ...}`` with the per-seed
    accuracy values, or ``{"kind": "failure", ...}`` with a serialized
    :class:`TrialFailure`.  Failed cells are *not* marked complete: a
    resumed sweep retries them (the failure records remain for
    post-mortems).  Every record is written and flushed before the sweep
    moves on, so the journal is valid after a kill at any point; a
    truncated trailing line (kill mid-write) is ignored on load.

    Integrity: every record carries a ``sha256`` digest of its canonical
    JSON form (:func:`repro.io.journal_record_digest`).  A corrupt
    *interior* record — bad digest or unparsable JSON before the final
    line — is skipped with an :class:`~repro.errors.IntegrityWarning` and
    listed in :attr:`corrupt_records`; its cell simply re-runs on resume.
    Corrupt poison archives are quarantined (renamed ``*.corrupt``, listed
    in :attr:`quarantines`) and regenerated instead of crashing the sweep.
    """

    def __init__(self, directory: PathLike, resume: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.directory / "journal.jsonl"
        self._cells: dict[tuple, list[float]] = {}
        self.failures: list[TrialFailure] = []
        self.corrupt_records: list[dict] = []
        self.quarantines: list[Path] = []
        # Journal writes are serialized in the sweep's parent process: pool
        # workers never hold a SweepCheckpoint, they return outcomes and the
        # scheduler journals them here.  The lock guards against a future
        # multi-threaded scheduler interleaving records mid-line.
        self._write_lock = threading.Lock()
        if resume:
            self._load()
        else:
            self.journal_path.write_text("")

    # -- journal --------------------------------------------------------
    @staticmethod
    def _cell_key(dataset: str, attacker: str, rate: float, defender: str) -> tuple:
        return (dataset, attacker, float(rate), defender)

    def _skip_corrupt(self, line_number: int, reason: str) -> None:
        """Note a corrupt interior journal record; its cell re-runs."""
        self.corrupt_records.append({"line": line_number, "reason": reason})
        warnings.warn(
            f"{self.journal_path}: skipping corrupt journal record at line "
            f"{line_number} ({reason}); its cell will re-run",
            IntegrityWarning,
            stacklevel=3,
        )

    def _load(self) -> None:
        if not self.journal_path.exists():
            return
        # Bytes, not text: injected/real corruption may not be valid UTF-8,
        # and one mangled record must not prevent reading the rest.
        lines = self.journal_path.read_bytes().splitlines()
        legacy_records = 0
        for number, raw in enumerate(lines, start=1):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    continue  # torn trailing write from a hard kill
                self._skip_corrupt(number, "unparsable JSON")
                continue
            if not isinstance(record, dict):
                self._skip_corrupt(number, "record is not a JSON object")
                continue
            if "sha256" in record:
                if journal_record_digest(record) != record["sha256"]:
                    self._skip_corrupt(number, "SHA-256 digest mismatch")
                    continue
            else:
                legacy_records += 1
            if record.get("kind") == "cell":
                key = self._cell_key(
                    record["dataset"],
                    record["attacker"],
                    record["rate"],
                    record["defender"],
                )
                self._cells[key] = [float(v) for v in record["values"]]
            elif record.get("kind") == "failure":
                self.failures.append(TrialFailure.from_json(record))
        if legacy_records:
            warnings.warn(
                f"{self.journal_path}: accepted {legacy_records} unverified "
                "legacy journal records (no digests)",
                IntegrityWarning,
                stacklevel=3,
            )

    def _append(self, record: dict) -> None:
        record = dict(record)
        record["sha256"] = journal_record_digest(record)
        line = json.dumps(record) + "\n"

        def write() -> None:
            # Preflight on its own fault site ("journal_disk", not
            # "journal") so disk_full injection never shifts the per-record
            # ordinals bitflip rules count on the "journal" site.
            require_free_disk(
                self.journal_path,
                len(line.encode("utf-8")),
                site="journal_disk",
                kind=record.get("kind"),
            )
            with self._write_lock, open(
                self.journal_path, "a", encoding="utf-8"
            ) as handle:
                handle.write(line)
                handle.flush()

        # Journal appends run in the sweep's parent process with no
        # supervisor above them; bounded retries ride out transient disk
        # pressure instead of crashing a sweep that is 99% journalled.
        with_disk_retry(write)
        if faults.damage(
            "journal",
            kind=record.get("kind"),
            dataset=record.get("dataset"),
            attacker=record.get("attacker"),
            defender=record.get("defender"),
        ):
            _corrupt_last_journal_line(self.journal_path)

    def cell_values(
        self, dataset: str, attacker: str, rate: float, defender: str
    ) -> Optional[list[float]]:
        """Per-seed values of a previously completed cell, or ``None``."""
        return self._cells.get(self._cell_key(dataset, attacker, rate, defender))

    def record_cell(
        self,
        dataset: str,
        attacker: str,
        rate: float,
        defender: str,
        values: list[float],
    ) -> None:
        """Mark a cell complete (journalled immediately)."""
        self._cells[self._cell_key(dataset, attacker, rate, defender)] = list(values)
        self._append(
            {
                "kind": "cell",
                "dataset": dataset,
                "attacker": attacker,
                "rate": float(rate),
                "defender": defender,
                "values": [float(v) for v in values],
            }
        )

    def record_failure(self, failure: TrialFailure) -> None:
        """Journal a trial failure (cell stays incomplete for resume)."""
        self._append({"kind": "failure", **failure.to_json()})

    # -- mid-trial snapshots --------------------------------------------
    def snapshot_path(self, key: TrialKey) -> Path:
        """Archive path for ``key``'s mid-trial snapshot (one per trial).

        Snapshots are transient by design: they exist only between an
        interruption and the resumed attempt that consumes them, and are
        discarded when the trial completes or reseeds.
        """
        slug = "".join(c if c.isalnum() else "-" for c in key.label())
        return self.directory / f"snapshot_{slug}.npz"

    # -- poison graphs --------------------------------------------------
    def poison_path(
        self,
        dataset: str,
        attacker: str,
        rate: float,
        dataset_seed: int,
        scale: float,
    ) -> Path:
        slug = "".join(c if c.isalnum() else "-" for c in attacker)
        return self.directory / (
            f"poison_{dataset}_{slug}_r{rate:g}_ds{dataset_seed}_x{scale:g}.npz"
        )

    def load_poison(
        self,
        dataset: str,
        attacker: str,
        rate: float,
        dataset_seed: int,
        scale: float,
    ) -> Optional[AttackResult]:
        """The persisted attack result for this row, or ``None``.

        A corrupt archive (failed digest, unreadable payload, or a graph
        that no longer satisfies its contracts) is quarantined — renamed to
        ``*.corrupt`` and listed in :attr:`quarantines` — and ``None`` is
        returned, so the caller regenerates the poison instead of crashing.
        """
        path = self.poison_path(dataset, attacker, rate, dataset_seed, scale)
        if not path.exists():
            return None
        try:
            return load_attack_result(path)
        except (SerializationError, GraphError) as error:
            self.quarantine(path, str(error))
            return None

    def quarantine(self, path: Path, reason: str) -> Path:
        """Rename a corrupt artifact to ``*.corrupt`` and record it."""
        target = path.with_name(path.name + ".corrupt")
        os.replace(path, target)
        self.quarantines.append(target)
        warnings.warn(
            f"quarantined corrupt artifact {path.name} -> {target.name} "
            f"({reason}); it will be regenerated",
            IntegrityWarning,
            stacklevel=3,
        )
        return target

    def save_poison(
        self,
        dataset: str,
        attacker: str,
        rate: float,
        dataset_seed: int,
        scale: float,
        result: AttackResult,
    ) -> Path:
        path = self.poison_path(dataset, attacker, rate, dataset_seed, scale)

        def write() -> None:
            # In-memory footprint over-estimates the compressed archive, so
            # the preflight errs on the safe side of a torn write.
            require_free_disk(
                path,
                estimate_nbytes(result),
                site="poison_disk",
                dataset=dataset,
                attacker=attacker,
            )
            save_attack_result(result, path)

        with_disk_retry(write)
        if faults.damage(
            "poison_archive", dataset=dataset, attacker=attacker, rate=rate
        ):
            _corrupt_file_byte(path)
        return path


def _corrupt_file_byte(path: Path) -> None:
    """Flip one mid-file byte in place (fault injection only)."""
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.seek(size // 2)
        byte = handle.read(1)
        handle.seek(size // 2)
        handle.write(bytes([byte[0] ^ 0xFF]))


def _corrupt_last_journal_line(path: Path) -> None:
    """Damage the digest of the journal's last record (fault injection only).

    The replacement byte is ASCII (``X``/``Y``) so the line stays decodable
    text — the point is a digest mismatch, not an undecodable stream (the
    loader tolerates both, but tests assert on the digest path).
    """
    raw = path.read_bytes()
    stripped = raw.rstrip(b"\n")
    if not stripped:
        return
    cut = stripped.rfind(b"\n") + 1  # start of last record (0 if only one)
    line = bytearray(stripped[cut:])
    middle = len(line) // 2
    line[middle] = ord("Y") if line[middle] == ord("X") else ord("X")
    path.write_bytes(stripped[:cut] + bytes(line) + b"\n")
