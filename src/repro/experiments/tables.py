"""Plain-text rendering of experiment results in the paper's table style."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .runner import AccuracyTable, CellResult

__all__ = ["format_accuracy_table", "format_timing_table", "format_series"]


def format_accuracy_table(table: AccuracyTable, title: str = "") -> str:
    """Render an :class:`AccuracyTable` like the paper's Tables IV–VI.

    The best defender per attacker row is wrapped in ``( )`` and the
    strongest attacker per defender column is marked with ``*``, mirroring
    the paper's parentheses/bold conventions.  Cells whose trials failed
    (``None``) render as ``n/a``; partial grids annotate the failure count
    below the table (full records go in the report's failure appendix).
    """
    defenders = list(next(iter(table.rows.values())).keys())
    strongest = {
        name: table.strongest_attacker(name)
        for name in defenders
        if any(a != "Clean" for a in table.rows)
    }
    header = ["Attacker"] + defenders
    lines = []
    if title:
        lines.append(title)
    widths = [max(12, len(h) + 2) for h in header]

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines.append(fmt_row(header))
    lines.append("-+-".join("-" * width for width in widths))
    for attacker, row in table.rows.items():
        best = table.best_defender(attacker)
        cells = [attacker]
        for name in defenders:
            cell = row[name]
            if cell is None:
                cells.append("n/a")
                continue
            text = str(cell)
            if name == best:
                text = f"({text})"
            if strongest.get(name) == attacker:
                text = f"*{text}"
            cells.append(text)
        lines.append(fmt_row(cells))
    failed = table.num_failed_cells
    if failed:
        lines.append(
            f"[{failed} cell{'s' if failed != 1 else ''} n/a — "
            f"{len(table.failures)} trial failure"
            f"{'s' if len(table.failures) != 1 else ''}; see failure appendix]"
        )
    return "\n".join(lines)


def format_timing_table(
    timings: Mapping[str, Mapping[str, CellResult]],
    title: str = "",
    unit: str = "s",
) -> str:
    """Render a Table VII/VIII-style timing grid (rows: methods, cols: datasets).

    Rows may be ragged (e.g. GCN-Jaccard has no Polblogs column); missing
    cells render as ``—``.
    """
    datasets: list[str] = []
    for row in timings.values():
        for ds in row:
            if ds not in datasets:
                datasets.append(ds)
    header = ["Method"] + datasets
    widths = [max(14, len(h) + 2) for h in header]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    best = {
        ds: min(
            (m for m in timings if ds in timings[m]),
            key=lambda m: timings[m][ds].mean,
        )
        for ds in datasets
    }
    for method, row in timings.items():
        cells = [method]
        for ds in datasets:
            if ds not in row:
                cells.append("—")
                continue
            cell = row[ds]
            text = f"{cell.mean:.2f}±{cell.std:.2f}{unit}"
            if best[ds] == method:
                text = f"({text})"
            cells.append(text)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    percent: bool = True,
) -> str:
    """Render figure data as a text table: one column per x, one row per line."""
    header = [x_label] + [str(x) for x in x_values]
    widths = [max(12, len(h) + 2) for h in header]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for name, values in series.items():
        cells = [name] + [
            (f"{100 * v:.2f}" if percent else f"{v:.4g}") for v in values
        ]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)
