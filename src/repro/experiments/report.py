"""Measured-vs-paper reporting.

Builds a markdown comparison between a measured accuracy grid
(:class:`~repro.experiments.runner.AccuracyTable`) and the paper's reported
numbers (:mod:`repro.experiments.paper`), and evaluates the paper's
qualitative *shape claims* on the measured data — the same claims the
benches assert.

Used by ``python -m repro table --compare`` and available directly::

    runner = ExperimentRunner()
    table = runner.accuracy_table("cora")
    print(render_comparison(table))
"""

from __future__ import annotations

from typing import Mapping

from .paper import paper_accuracy_table
from .runner import AccuracyTable

__all__ = ["render_comparison", "evaluate_shape_claims"]


def evaluate_shape_claims(table: AccuracyTable) -> list[tuple[str, bool]]:
    """The paper's qualitative claims, evaluated on *measured* numbers.

    Mirrors :func:`repro.experiments.paper.shape_claims` (which evaluates
    the same list on the paper's own numbers).
    """
    gcn = {attacker: row["GCN"].mean for attacker, row in table.rows.items()}
    attacked = {k: v for k, v in gcn.items() if k != "Clean"}
    strongest = min(attacked, key=attacked.get)  # type: ignore[arg-type]
    peega_row = table.rows.get("PEEGA", {})
    claims = [
        (
            "PEEGA reduces GCN accuracy below clean",
            gcn.get("PEEGA", 1.0) < gcn.get("Clean", 0.0),
        ),
        (
            "PEEGA is stronger than the spectral black-box GF-Attack",
            gcn.get("PEEGA", 1.0) < gcn.get("GF-Attack", 0.0),
        ),
        (
            "the strongest attacker is Metattack or PEEGA",
            strongest in ("Metattack", "PEEGA"),
        ),
        (
            "GNAT beats raw GCN under the strongest attack",
            table.rows[strongest]["GNAT"].mean > table.rows[strongest]["GCN"].mean,
        ),
        (
            "GNAT is the best defender under PEEGA",
            bool(peega_row)
            and max(peega_row, key=lambda d: peega_row[d].mean) == "GNAT",
        ),
    ]
    return claims


def render_comparison(table: AccuracyTable) -> str:
    """Markdown block: measured vs paper per cell, plus the claim scorecard."""
    paper = paper_accuracy_table(table.dataset)
    defenders = list(next(iter(table.rows.values())).keys())
    lines = [
        f"### {table.dataset} @ rate {table.rate} — measured (paper)",
        "",
        "| attacker | " + " | ".join(defenders) + " |",
        "|" + "---|" * (len(defenders) + 1),
    ]
    for attacker, row in table.rows.items():
        cells = [attacker]
        for defender in defenders:
            measured = 100 * row[defender].mean
            reference = paper.get(attacker, {}).get(defender)
            if reference is None:
                cells.append(f"{measured:.1f} (—)")
            else:
                cells.append(f"{measured:.1f} ({reference:.1f})")
        lines.append("| " + " | ".join(cells) + " |")

    lines.append("")
    lines.append("**Shape claims (measured):**")
    for claim, holds in evaluate_shape_claims(table):
        lines.append(f"- {'✅' if holds else '❌'} {claim}")
    return "\n".join(lines)
