"""Measured-vs-paper reporting.

Builds a markdown comparison between a measured accuracy grid
(:class:`~repro.experiments.runner.AccuracyTable`) and the paper's reported
numbers (:mod:`repro.experiments.paper`), and evaluates the paper's
qualitative *shape claims* on the measured data — the same claims the
benches assert.

Partial grids are first-class: cells whose trials failed render as ``n/a``,
shape claims that touch a missing cell evaluate to ``False`` rather than
crashing, and :func:`render_failure_appendix` lists every
:class:`~repro.experiments.supervisor.TrialFailure` a fault-tolerant sweep
collected.

Used by ``python -m repro table --compare`` and available directly::

    runner = ExperimentRunner()
    table = runner.accuracy_table("cora")
    print(render_comparison(table))
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .paper import paper_accuracy_table
from .runner import AccuracyTable
from .supervisor import TrialFailure

__all__ = ["render_comparison", "evaluate_shape_claims", "render_failure_appendix"]


def _mean(table: AccuracyTable, attacker: str, defender: str) -> Optional[float]:
    cell = table.rows.get(attacker, {}).get(defender)
    return None if cell is None else cell.mean


def evaluate_shape_claims(table: AccuracyTable) -> list[tuple[str, bool]]:
    """The paper's qualitative claims, evaluated on *measured* numbers.

    Mirrors :func:`repro.experiments.paper.shape_claims` (which evaluates
    the same list on the paper's own numbers).  A claim involving a failed
    (``n/a``) cell counts as not holding.
    """
    gcn = {
        attacker: row["GCN"].mean
        for attacker, row in table.rows.items()
        if row.get("GCN") is not None
    }
    attacked = {k: v for k, v in gcn.items() if k != "Clean"}
    strongest = min(attacked, key=attacked.get) if attacked else None  # type: ignore[arg-type]
    peega_row = {
        name: cell for name, cell in table.rows.get("PEEGA", {}).items() if cell is not None
    }

    def _beats_gcn_under_strongest() -> bool:
        if strongest is None:
            return False
        gnat = _mean(table, strongest, "GNAT")
        raw = _mean(table, strongest, "GCN")
        return gnat is not None and raw is not None and gnat > raw

    claims = [
        (
            "PEEGA reduces GCN accuracy below clean",
            gcn.get("PEEGA", 1.0) < gcn.get("Clean", 0.0),
        ),
        (
            "PEEGA is stronger than the spectral black-box GF-Attack",
            gcn.get("PEEGA", 1.0) < gcn.get("GF-Attack", 0.0),
        ),
        (
            "the strongest attacker is Metattack or PEEGA",
            strongest in ("Metattack", "PEEGA"),
        ),
        (
            "GNAT beats raw GCN under the strongest attack",
            _beats_gcn_under_strongest(),
        ),
        (
            "GNAT is the best defender under PEEGA",
            bool(peega_row)
            and max(peega_row, key=lambda d: peega_row[d].mean) == "GNAT",
        ),
    ]
    return claims


def render_comparison(table: AccuracyTable) -> str:
    """Markdown block: measured vs paper per cell, plus the claim scorecard."""
    paper = paper_accuracy_table(table.dataset)
    defenders = list(next(iter(table.rows.values())).keys())
    lines = [
        f"### {table.dataset} @ rate {table.rate} — measured (paper)",
        "",
        "| attacker | " + " | ".join(defenders) + " |",
        "|" + "---|" * (len(defenders) + 1),
    ]
    for attacker, row in table.rows.items():
        cells = [attacker]
        for defender in defenders:
            cell = row[defender]
            reference = paper.get(attacker, {}).get(defender)
            if cell is None:
                cells.append("n/a" if reference is None else f"n/a ({reference:.1f})")
                continue
            measured = 100 * cell.mean
            if reference is None:
                cells.append(f"{measured:.1f} (—)")
            else:
                cells.append(f"{measured:.1f} ({reference:.1f})")
        lines.append("| " + " | ".join(cells) + " |")

    lines.append("")
    lines.append("**Shape claims (measured):**")
    for claim, holds in evaluate_shape_claims(table):
        lines.append(f"- {'✅' if holds else '❌'} {claim}")
    appendix = render_failure_appendix(table.failures)
    if appendix:
        lines.append("")
        lines.append(appendix)
    return "\n".join(lines)


def render_failure_appendix(failures: Sequence[TrialFailure]) -> str:
    """Markdown appendix listing every trial failure of a sweep.

    Empty string when the sweep was clean, so callers can append
    unconditionally.
    """
    if not failures:
        return ""
    lines = [f"**Failure appendix ({len(failures)} trial failure"
             f"{'s' if len(failures) != 1 else ''}):**"]
    for failure in failures:
        lines.append(f"- {failure.summary()}")
        last_frame = _last_traceback_line(failure.traceback)
        if last_frame:
            lines.append(f"  - {last_frame}")
    return "\n".join(lines)


def _last_traceback_line(tb: str) -> str:
    frames = [line.strip() for line in tb.splitlines() if line.strip().startswith("File ")]
    return frames[-1] if frames else ""
