"""Parallel sweep execution: a process-pool trial scheduler with
deterministic merge.

The paper's accuracy grids are embarrassingly parallel — hundreds of
independent (attacker, defender, seed) trials — but the serial runner
executes them one at a time.  This module turns a sweep into an explicit
dependency DAG and executes it on a pool of worker processes without
changing a single reported number:

:class:`SweepPlan`
    Topologically ordered list of :class:`TrialTask` s in *canonical order*
    — exactly the order the serial runner visits trials.  Poison-graph
    generation (one ``attack`` task per attacked row) precedes the row's
    defense trials; everything else is independent and fans out.

:class:`SerialTrialExecutor` / :class:`ParallelTrialExecutor`
    Run a plan and return ``{task.index: TrialOutcome}``.  The serial
    executor reproduces today's in-process semantics exactly (shared
    supervisor, ambient fault injector, quarantine, cell abandonment).
    The parallel executor dispatches ready tasks to a
    ``ProcessPoolExecutor``; workers return structured outcomes (never
    raise ``Exception``), quarantine lives in the parent scheduler, and
    journal writes stay in the parent so checkpoint/resume is
    crash-consistent under any completion order.

:func:`assemble_table`
    Deterministic merge: outcomes are folded into an
    :class:`~repro.experiments.runner.AccuracyTable` in canonical order,
    so completion order can never change a cell, the failure appendix, or
    a mean/stddev.  Parallel output is bit-identical to serial output.

Determinism rests on two facts the test suite pins down: every trial is
explicitly seeded (``make_defender(seed)``, per-attempt reseeds via
:data:`~repro.experiments.supervisor.RESEED_STRIDE`), and dataset
generation is a pure function of ``(name, scale, seed)`` — so a trial
computes the same float no matter which process runs it.

Fault injection crosses the process boundary explicitly: each task ships a
copy of the active injector's specs plus the trial's canonical per-site
ordinal, and the worker seeds a fresh injector with it
(:meth:`~repro.utils.faults.FaultInjector.seed_counters`), so ``at=N``
rules fire on the same trial as in a serial run.  ``times=N`` rules
become per-trial budgets in workers (each worker's injector counts its
own firings); sweep-global ``times`` accounting cannot exist without
cross-process synchronization and is documented as per-trial in
``docs/parallel_sweeps.md``.  Injected kills (``BaseException``) pickle
back through the pool and abort the sweep, exactly like an operator
``KeyboardInterrupt``.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import signal
import tempfile
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import multiprocessing

from ..attacks.base import AttackResult
from ..errors import CapacityWarning, ConfigError, DegradedWarning
from ..graph import Graph
from ..utils import cancellation, faults
from ..utils.snapshots import TrialSnapshotter
from ..utils.blas import cpu_count, limit_blas_threads, plan_worker_threads
from ..utils.resources import MAX_DEGRADE_LEVEL, budget_from_env, degraded_footprint, install_budget
from .supervisor import (
    RESEED_STRIDE,
    TrialFailure,
    TrialKey,
    TrialOutcome,
    TrialPolicy,
    TrialSupervisor,
)
from .timing import SweepTimings

__all__ = [
    "TrialTask",
    "SweepPlan",
    "SweepRuntime",
    "SerialTrialExecutor",
    "ParallelTrialExecutor",
    "make_executor",
    "assemble_table",
]

CLEAN_ROW = "Clean"


# ---------------------------------------------------------------------------
# Planning


@dataclass(frozen=True)
class TrialTask:
    """One node of the sweep DAG.

    ``index`` is the task's position in canonical (serial) order and is the
    key every executor reports outcomes under.  ``depends_on`` is the index
    of the attack task whose poison graph this defense trial trains on
    (``None`` for attack tasks and for the Clean row).  ``site_ordinal`` is
    the trial's canonical per-site fault-injection index (see
    :meth:`~repro.utils.faults.FaultInjector.seed_counters`).
    """

    index: int
    kind: str  # "attack" | "defense"
    key: TrialKey
    depends_on: Optional[int] = None
    site_ordinal: int = 0


@dataclass
class SweepPlan:
    """A sweep's trials in canonical order, with row/cell indexes.

    ``dataset`` keeps the caller's original casing (it labels the table);
    trial keys are lowercased like everywhere else in the harness.
    """

    dataset: str
    rate: float
    rows: list[str]
    defenders: list[str]
    seeds: int
    tasks: list[TrialTask] = field(default_factory=list)
    attack_tasks: dict[str, TrialTask] = field(default_factory=dict)
    cell_tasks: dict[tuple[str, str], list[TrialTask]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        dataset: str,
        rows: list[str],
        defenders: list[str],
        rate: float,
        seeds: int,
        completed: Optional[set[tuple[str, str]]] = None,
    ) -> "SweepPlan":
        """Plan a grid sweep.

        ``completed`` holds (row, defender) cells already present in a
        checkpoint: their defense tasks are omitted, and a row whose cells
        are *all* cached gets no attack task either (its poison graph is
        never needed — the poison cache fast-path covers partial rows).
        """
        completed = completed or set()
        plan = cls(
            dataset=dataset,
            rate=float(rate),
            rows=list(rows),
            defenders=list(defenders),
            seeds=int(seeds),
        )
        lower = dataset.lower()
        site_ordinals = {"attacker": 0, "defender": 0}

        def add(kind: str, key: TrialKey, depends_on: Optional[int]) -> TrialTask:
            site = "attacker" if kind == "attack" else "defender"
            task = TrialTask(
                index=len(plan.tasks),
                kind=kind,
                key=key,
                depends_on=depends_on,
                site_ordinal=site_ordinals[site],
            )
            site_ordinals[site] += 1
            plan.tasks.append(task)
            return task

        for row in plan.rows:
            pending = [name for name in plan.defenders if (row, name) not in completed]
            attack_index: Optional[int] = None
            if row != CLEAN_ROW and pending:
                attack = add(
                    "attack", TrialKey(dataset=lower, attacker=row, rate=plan.rate), None
                )
                plan.attack_tasks[row] = attack
                attack_index = attack.index
            for name in plan.defenders:
                if name not in pending:
                    continue
                plan.cell_tasks[(row, name)] = [
                    add(
                        "defense",
                        TrialKey(
                            dataset=lower,
                            attacker=row,
                            rate=plan.rate,
                            defender=name,
                            seed=seed,
                        ),
                        attack_index,
                    )
                    for seed in range(plan.seeds)
                ]
        return plan


@dataclass
class SweepRuntime:
    """What an executor needs from the :class:`ExperimentRunner`.

    The serial executor calls ``run_attack``/``run_defense`` (closures over
    the runner's shared supervisor, so quarantine and retry state behave
    exactly as before).  The parallel executor instead ships
    ``config``/``policy``/graph references to workers and uses the
    ``poison_*`` callbacks to keep the parent's poison cache and the
    checkpoint authoritative.  ``record_cell`` journals a completed cell
    the moment its last seed lands — crash-consistent in both modes.
    """

    dataset: str
    rate: float
    scale: float
    dataset_seed: int
    policy: TrialPolicy
    clean_graph: Callable[[], Graph]
    run_attack: Callable[[TrialKey], TrialOutcome]
    run_defense: Callable[[TrialKey, Graph], TrialOutcome]
    poison_lookup: Callable[[str], Optional[AttackResult]]
    poison_path: Callable[[str], Optional[str]]
    store_poison: Callable[[str, AttackResult], Optional[str]]
    record_cell: Callable[[str, str, list[float]], None]
    validate: str = "strict"
    # Mid-trial snapshot archive for a trial key (None without a
    # checkpoint): workers snapshot into it and resumed/requeued attempts
    # restore from it.  See repro.utils.snapshots.
    snapshot_path: Optional[Callable[[TrialKey], Optional[str]]] = None


class _CellTracker:
    """Journals each cell as soon as all of its seed trials have succeeded."""

    def __init__(self, plan: SweepPlan, record_cell: Callable[[str, str, list[float]], None]):
        self._expected = {cell: len(tasks) for cell, tasks in plan.cell_tasks.items()}
        self._values: dict[tuple[str, str], dict[int, float]] = {}
        self._failed: set[tuple[str, str]] = set()
        self._record = record_cell

    def offer(self, task: TrialTask, outcome: TrialOutcome) -> None:
        cell = (task.key.attacker, task.key.defender)
        if not outcome.ok:
            self._failed.add(cell)
            return
        values = self._values.setdefault(cell, {})
        values[task.key.seed] = float(outcome.value)
        if cell not in self._failed and len(values) == self._expected[cell]:
            self._record(
                task.key.attacker,
                task.key.defender,
                [values[seed] for seed in sorted(values)],
            )


# ---------------------------------------------------------------------------
# Serial execution (reference semantics)


class SerialTrialExecutor:
    """In-process executor with exactly the historical serial semantics.

    Trials run through the runner's shared :class:`TrialSupervisor` under
    the ambient fault injector; a failed seed abandons the rest of its
    cell, and a failed attack skips the whole row.  This is the executor
    ``--jobs 1`` uses and the reference the parallel path must match bit
    for bit.
    """

    jobs = 1

    def __init__(self) -> None:
        self.timings: Optional[SweepTimings] = None

    def run(self, plan: SweepPlan, runtime: SweepRuntime) -> dict[int, TrialOutcome]:
        timings = SweepTimings(jobs=1)
        timings.start()
        self.timings = timings
        outcomes: dict[int, TrialOutcome] = {}
        cells = _CellTracker(plan, runtime.record_cell)
        abandoned: set[tuple[str, str]] = set()
        row_graphs: dict[str, Graph] = {}
        try:
            for task in plan.tasks:
                if task.kind == "attack":
                    started = time.monotonic()
                    outcome = runtime.run_attack(task.key)
                    timings.record(
                        task.key.label(), "attack", time.monotonic() - started
                    )
                    outcomes[task.index] = outcome
                    if outcome.ok:
                        row_graphs[task.key.attacker] = outcome.value.poisoned
                    continue

                cell = (task.key.attacker, task.key.defender)
                if cell in abandoned:
                    continue
                if task.depends_on is not None:
                    dep = outcomes.get(task.depends_on)
                    if dep is None or not dep.ok:
                        continue  # row's attack failed: cell is n/a
                    graph = row_graphs[task.key.attacker]
                else:
                    graph = runtime.clean_graph()
                started = time.monotonic()
                outcome = runtime.run_defense(task.key, graph)
                timings.record(task.key.label(), "defense", time.monotonic() - started)
                outcomes[task.index] = outcome
                cells.offer(task, outcome)
                if not outcome.ok:
                    abandoned.add(cell)
        finally:
            timings.finish()
        return outcomes


# ---------------------------------------------------------------------------
# Worker side.  Everything below the fold runs inside pool processes; it is
# deliberately self-contained (module-level functions, picklable payloads).

# Clean graphs and poison graphs are cached per worker process, keyed by
# their value-determining reference, so a worker running many trials of the
# same row loads/derives the graph once.
_WORKER_GRAPHS: dict[tuple, Graph] = {}


def _worker_sigterm(signum, frame) -> None:
    """Worker SIGTERM: cooperative shutdown first, hard exit second.

    The first signal flips the process-global shutdown flag — the running
    trial observes it at its next poll site, writes a final snapshot, and
    unwinds (``_execute_trial`` then exits 143).  A second SIGTERM means
    the parent lost patience (or the trial never polls): exit immediately.
    """
    if not cancellation.request_shutdown("worker received SIGTERM"):
        os._exit(143)


def _worker_init(blas_threads: Optional[int]) -> None:
    """Pool initializer: pin the worker's BLAS thread budget and adopt the
    parent's memory budget.

    Environment variables are authoritative for ``spawn`` workers and for
    lazily-initialized runtimes under ``fork`` (see :mod:`repro.utils.blas`
    for the honest caveats).  The memory budget arrives the same way — the
    CLI exports ``REPRO_MEMORY_BUDGET`` — so each worker governs its own
    RSS with the same ceiling the parent uses.

    Also clears any shutdown flag inherited through ``fork`` (the parent
    may be mid-shutdown while draining) and installs the cooperative
    SIGTERM handler so a parent-initiated termination snapshots before it
    kills.
    """
    if blas_threads is not None:
        limit_blas_threads(blas_threads)
    install_budget(budget_from_env())
    cancellation.reset_shutdown()
    try:
        signal.signal(signal.SIGTERM, _worker_sigterm)
    except ValueError:  # pragma: no cover - non-main-thread initializer
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def _terminate_pid(pid: int, grace: float) -> None:
    """SIGTERM ``pid``, give it ``grace`` seconds to unwind, then SIGKILL.

    The grace window is what lets a cooperative worker reach a poll site,
    persist its mid-trial snapshot, and exit on its own terms; only a
    worker that stays wedged past it is killed outright.
    """
    try:
        os.kill(pid, signal.SIGTERM)
    except OSError:
        return
    deadline = time.monotonic() + grace
    while time.monotonic() < deadline:
        if not _pid_alive(pid):
            return
        time.sleep(0.05)
    try:
        os.kill(pid, signal.SIGKILL)
    except OSError:
        pass


def _worker_graph(ref: tuple) -> Graph:
    """Resolve a graph reference shipped with a task payload.

    ``("dataset", name, scale, seed, validate)`` regenerates the clean
    graph (pure function of its key — the validation policy is part of the
    key because ``repair`` can change the graph), ``("npz", path)`` loads a
    persisted poison archive, ``("inline", graph)`` carries the graph in
    the payload (no checkpoint attached, so there is no file to point at).
    """
    kind = ref[0]
    if kind == "inline":
        return ref[1]
    if ref not in _WORKER_GRAPHS:
        if kind == "dataset":
            from ..datasets import load_dataset

            _, name, scale, seed, validate = ref
            _WORKER_GRAPHS[ref] = load_dataset(
                name, scale=scale, seed=seed, validate=validate
            )
        elif kind == "npz":
            from ..io import load_attack_result

            _WORKER_GRAPHS[ref] = load_attack_result(ref[1]).poisoned
        else:  # pragma: no cover - programming error
            raise ConfigError(f"unknown graph reference kind {kind!r}")
    return _WORKER_GRAPHS[ref]


@dataclass(frozen=True)
class _TaskPayload:
    """Everything a worker needs to run one trial, picklable.

    ``degrade`` is the degradation-ladder rung the trial runs under (0 =
    full footprint; raised by the parent each time a pool worker running
    this trial died).  ``prior_kills`` counts those deaths: the replacement
    worker pre-fires its ``oomkill`` fault specs by that amount so a
    bounded kill rule does not re-fire forever on the requeued trial.
    """

    kind: str
    key: TrialKey
    policy: TrialPolicy
    graph_ref: tuple
    fault_specs: tuple[faults.FaultSpec, ...]
    site_ordinal: int
    validate: str = "strict"
    degrade: int = 0
    prior_kills: int = 0
    # Preemption plumbing (see repro.utils.cancellation / .snapshots).
    # ``prior_kills`` doubles as the heartbeat incarnation: the parent only
    # trusts beacons stamped with the current dispatch's kill count, so a
    # stale file from a killed predecessor can never vouch for its
    # replacement.
    task_index: int = 0
    snapshot_path: Optional[str] = None
    beacon_path: Optional[str] = None
    heartbeat_interval: float = 1.0


@dataclass(frozen=True)
class _WorkerResult:
    """A trial outcome plus the instrumentation the parent merges."""

    outcome: TrialOutcome
    events: tuple[faults.FaultEvent, ...]
    started: float
    finished: float


def _execute_trial(payload: _TaskPayload) -> _WorkerResult:
    """Run one supervised trial inside a pool worker.

    Mirrors the serial trial bodies (:meth:`ExperimentRunner.attack` /
    ``_defense_trial``) exactly: same fault-injection context, same
    per-attempt reseeding, same supervisor semantics.  A fresh injector is
    installed per task — also overriding any ambient injector inherited
    through ``fork`` — seeded with the trial's canonical site ordinal so
    index-based fault rules fire on the same trial as in a serial run.
    ``InjectedKill``/``KeyboardInterrupt`` propagate out of this function;
    the pool pickles them back to the parent, which aborts the sweep.
    """
    from .config import make_attacker, make_defender

    started = time.monotonic()
    key = payload.key
    specs = [
        dataclasses.replace(
            spec,
            # A kill erased the injector that fired it; seed the replacement
            # with the prior kill count so bounded worker-lethal rules
            # (oomkill, sigterm, and a hang long enough that the heartbeat
            # monitor killed the worker) stay spent.
            fired=(
                payload.prior_kills
                if spec.action in ("oomkill", "sigterm", "hang")
                else 0
            ),
            match=dict(spec.match),
        )
        for spec in payload.fault_specs
    ]
    injector = faults.FaultInjector(specs) if specs else None
    if injector is not None:
        site = "attacker" if payload.kind == "attack" else "defender"
        injector.seed_counters({site: payload.site_ordinal})
    supervisor = TrialSupervisor(payload.policy)
    graph = _worker_graph(payload.graph_ref)

    if payload.kind == "attack":

        def trial(attempt: int) -> AttackResult:
            faults.perturb(
                "attacker",
                dataset=key.dataset,
                attacker=key.attacker,
                rate=key.rate,
                attempt=attempt,
            )
            attacker = make_attacker(key.attacker, key.dataset, seed=attempt * RESEED_STRIDE)
            return attacker.attack(
                graph, perturbation_rate=key.rate, validate=payload.validate
            )

    else:

        def trial(attempt: int) -> float:
            faults.perturb(
                "defender",
                dataset=key.dataset,
                attacker=key.attacker,
                defender=key.defender,
                seed=key.seed,
                attempt=attempt,
            )
            seed = key.seed + attempt * RESEED_STRIDE
            return (
                make_defender(key.defender, key.dataset, seed=seed)
                .fit(graph, validate=payload.validate)
                .test_accuracy
            )

    beacon = None
    if payload.beacon_path is not None:
        beacon = cancellation.Beacon(
            payload.beacon_path,
            task_index=payload.task_index,
            incarnation=payload.prior_kills,
            interval=payload.heartbeat_interval,
        )
    sink = (
        TrialSnapshotter(payload.snapshot_path)
        if payload.snapshot_path is not None
        else None
    )
    token = cancellation.CancelToken(name=f"worker-{key.label()}")
    try:
        with cancellation.trial_scope(token=token, beacon=beacon, sink=sink):
            if beacon is not None:
                beacon.beat("dispatch")
            with degraded_footprint(payload.degrade), faults.active(injector):
                outcome = supervisor.run(key, trial)
    except cancellation.CancelledError as error:
        if error.cause in (cancellation.CAUSE_SHUTDOWN, cancellation.CAUSE_KILL):
            # Parent-initiated termination (SIGTERM handler above): the
            # final snapshot is on disk, exit with the conventional
            # 128+SIGTERM code.  The broken pool surfaces in the parent,
            # which requeues or resumes the trial.
            os._exit(143)
        raise
    return _WorkerResult(
        outcome=outcome,
        events=tuple(injector.events) if injector is not None else (),
        started=started,
        finished=time.monotonic(),
    )


# ---------------------------------------------------------------------------
# Parallel execution


class ParallelTrialExecutor:
    """Dispatches ready trials to a process pool; merges deterministically.

    Scheduling: every task with no unmet dependency is submitted up front;
    a row's defense tasks are released when its attack lands (or resolved
    from the shared poison cache without ever hitting the pool).
    Quarantine lives here in the parent — the first failure arriving for a
    quarantine key synthesizes failures for every not-yet-dispatched task
    sharing it, mirroring the supervisor's skip-after-first-failure
    contract.  In-flight trials of a just-quarantined method are left to
    finish; the canonical merge (:func:`assemble_table`) normalizes any
    extra failures away, which is why completion order cannot leak into
    the output.

    ``BaseException`` from a worker (injected kill, operator interrupt)
    drains the pool and propagates, exactly like the serial path.

    Worker *death* (kernel OOM kill, segfault, injected ``oomkill``) is
    not fatal: the scheduler salvages every future that finished before
    the pool broke, rebuilds the pool, and requeues the dead trials one
    rung down the degradation ladder (fewer BLAS threads, smaller
    candidate block, autodiff engine — see
    :data:`repro.utils.resources.DEGRADATION_LADDER`).  A trial whose
    workers die past the bottom of the ladder becomes a structured
    :class:`TrialFailure` instead of an endless kill loop.
    """

    def __init__(
        self,
        jobs: int,
        blas_threads: Optional[int] = None,
        start_method: Optional[str] = None,
        heartbeat_interval: Optional[float] = None,
        kill_grace_seconds: float = 2.0,
    ) -> None:
        if jobs < 2:
            raise ConfigError(
                f"ParallelTrialExecutor needs jobs >= 2, got {jobs}; "
                "use SerialTrialExecutor (--jobs 1) instead"
            )
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ConfigError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if kill_grace_seconds < 0:
            raise ConfigError(
                f"kill_grace_seconds must be non-negative, got {kill_grace_seconds}"
            )
        self.jobs = int(jobs)
        self.blas_threads = (
            int(blas_threads) if blas_threads is not None else plan_worker_threads(jobs)
        )
        self.start_method = start_method
        # Liveness monitoring (None = disabled): workers beat a per-task
        # beacon file at every poll site; a worker whose beacon stalls for
        # 2x the interval is terminated (SIGTERM, grace, SIGKILL) and its
        # trial requeued through the degradation path.  The contract is
        # that trial code visits a poll site at least once per interval
        # during normal operation — choose the interval accordingly.
        self.heartbeat_interval = (
            float(heartbeat_interval) if heartbeat_interval is not None else None
        )
        self.kill_grace_seconds = float(kill_grace_seconds)
        self.timings: Optional[SweepTimings] = None

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # platform without fork (Windows, some macOS setups)
            return multiprocessing.get_context("spawn")

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=self._context(),
            initializer=_worker_init,
            initargs=(self.blas_threads,),
        )

    def run(self, plan: SweepPlan, runtime: SweepRuntime) -> dict[int, TrialOutcome]:
        timings = SweepTimings(jobs=self.jobs)
        timings.start()
        self.timings = timings
        outcomes: dict[int, TrialOutcome] = {}
        if not plan.tasks:  # fully checkpointed sweep: nothing to spin up
            timings.finish()
            return outcomes

        cells = _CellTracker(plan, runtime.record_cell)
        quarantine: dict[tuple, TrialFailure] = {}
        graph_refs: dict[str, tuple] = {
            CLEAN_ROW: (
                "dataset",
                runtime.dataset.lower(),
                runtime.scale,
                runtime.dataset_seed,
                runtime.validate,
            )
        }
        ambient = faults.current()
        fault_specs = (
            tuple(
                dataclasses.replace(spec, fired=0, match=dict(spec.match))
                for spec in ambient.specs
            )
            if ambient is not None
            else ()
        )

        waiting: dict[int, list[TrialTask]] = {}
        for task in plan.tasks:
            if task.depends_on is not None:
                waiting.setdefault(task.depends_on, []).append(task)

        submit_times: dict[int, float] = {}
        inflight: dict[Future, TrialTask] = {}
        # Tasks waiting (or re-waiting, after a pool rebuild) for dispatch.
        pending: list[TrialTask] = []
        # Degradation state per task index: how many pool workers died while
        # running the trial, and which ladder rung its next dispatch uses.
        kill_counts: dict[int, int] = {}
        degrade_levels: dict[int, int] = {}
        # Heartbeat state: per-task beacon progress as observed by *this*
        # process's clock — (beat count, monotonic time it was first seen).
        # No cross-process clock comparison is ever made.
        beacon_dir: Optional[str] = None
        if self.heartbeat_interval is not None:
            beacon_dir = tempfile.mkdtemp(prefix="repro-beacons-")
        progress: dict[int, tuple[int, float]] = {}

        def submit(pool: ProcessPoolExecutor, task: TrialTask) -> None:
            """Resolve a ready task from caches/quarantine or dispatch it."""
            failure = quarantine.get(task.key.quarantine_key())
            if failure is not None:
                outcome = TrialOutcome(key=task.key, failure=failure)
                outcomes[task.index] = outcome
                if task.kind == "defense":
                    cells.offer(task, outcome)
                return
            if task.kind == "attack":
                cached = runtime.poison_lookup(task.key.attacker)
                if cached is not None:
                    # Shared poison cache hit: resolve without touching the
                    # pool and without re-persisting (the archive's mtime is
                    # part of the resume contract).
                    path = runtime.poison_path(task.key.attacker)
                    graph_refs[task.key.attacker] = (
                        ("npz", path) if path is not None else ("inline", cached.poisoned)
                    )
                    outcome = TrialOutcome(key=task.key, value=cached, attempts=0)
                    outcomes[task.index] = outcome
                    for dependent in waiting.pop(task.index, ()):
                        submit(pool, dependent)
                    return
                graph_ref = graph_refs[CLEAN_ROW]
            else:
                graph_ref = graph_refs[task.key.attacker]
            payload = _TaskPayload(
                kind=task.kind,
                key=task.key,
                policy=runtime.policy,
                graph_ref=graph_ref,
                fault_specs=fault_specs,
                site_ordinal=task.site_ordinal,
                validate=runtime.validate,
                degrade=degrade_levels.get(task.index, 0),
                prior_kills=kill_counts.get(task.index, 0),
                task_index=task.index,
                snapshot_path=(
                    runtime.snapshot_path(task.key)
                    if runtime.snapshot_path is not None
                    else None
                ),
                beacon_path=(
                    os.path.join(beacon_dir, f"beacon_{task.index}.json")
                    if beacon_dir is not None
                    else None
                ),
                heartbeat_interval=self.heartbeat_interval or 1.0,
            )
            submit_times[task.index] = time.monotonic()
            try:
                inflight[pool.submit(_execute_trial, payload)] = task
            except BrokenProcessPool:
                # The pool died under us mid-dispatch; park the task and let
                # the scheduler loop rebuild the pool and re-dispatch.
                pending.append(task)

        def attack_done(
            pool: ProcessPoolExecutor, task: TrialTask, outcome: TrialOutcome
        ) -> None:
            """Store the row's poison and release its waiting defense tasks."""
            if outcome.ok:
                result = outcome.value
                path = runtime.store_poison(task.key.attacker, result)
                graph_refs[task.key.attacker] = (
                    ("npz", str(path)) if path is not None else ("inline", result.poisoned)
                )
            for dependent in waiting.pop(task.index, ()):
                if outcome.ok:
                    submit(pool, dependent)
                # else: dependents stay without outcomes → n/a cells

        def process(
            pool: ProcessPoolExecutor, task: TrialTask, result: _WorkerResult
        ) -> None:
            """Merge one worker result into the parent's bookkeeping."""
            outcome = result.outcome
            outcomes[task.index] = outcome
            timings.record(
                task.key.label(),
                task.kind,
                result.finished - result.started,
                result.started - submit_times.get(task.index, result.started),
            )
            if ambient is not None:
                ambient.events.extend(result.events)
            if not outcome.ok:
                quarantine.setdefault(
                    outcome.failure.key.quarantine_key(), outcome.failure
                )
            if task.kind == "attack":
                attack_done(pool, task, outcome)
            else:
                cells.offer(task, outcome)

        def recover(broken: ProcessPoolExecutor) -> ProcessPoolExecutor:
            """Rebuild the pool after a worker death (kernel OOM kill,
            segfault, injected ``oomkill``) and requeue the in-flight trials
            one rung down the degradation ladder.

            Futures that finished before the pool broke are salvaged and
            merged normally — only trials with no result are re-dispatched.
            A trial whose workers keep dying past the bottom of the ladder
            becomes a structured infrastructure failure instead of an
            endless kill loop.
            """
            salvaged: list[tuple[TrialTask, _WorkerResult]] = []
            victims: list[TrialTask] = []
            for future, task in sorted(
                inflight.items(), key=lambda item: item[1].index
            ):
                result = None
                if future.done():
                    try:
                        result = future.result()
                    except BaseException:  # noqa: BLE001 — died with the pool
                        result = None
                if result is not None:
                    salvaged.append((task, result))
                else:
                    victims.append(task)
            inflight.clear()
            broken.shutdown(wait=False, cancel_futures=True)
            pool = self._make_pool()
            for task, result in salvaged:
                process(pool, task, result)
            for task in victims:
                progress.pop(task.index, None)
                kill_counts[task.index] = kill_counts.get(task.index, 0) + 1
                degrade_levels[task.index] = min(
                    degrade_levels.get(task.index, 0) + 1, MAX_DEGRADE_LEVEL
                )
                if kill_counts[task.index] > MAX_DEGRADE_LEVEL:
                    process(
                        pool,
                        task,
                        _infrastructure_failure(
                            task,
                            RuntimeError(
                                f"pool worker died {kill_counts[task.index]} "
                                f"times running {task.key.label()}; "
                                "degradation ladder exhausted"
                            ),
                        ),
                    )
                    continue
                warnings.warn(
                    f"{task.key.label()}: pool worker died (OOM kill or "
                    f"crash); requeued at degradation level "
                    f"{degrade_levels[task.index]}",
                    DegradedWarning,
                    stacklevel=3,
                )
                submit(pool, task)
            return pool

        def scan_beacons() -> None:
            """Terminate workers whose beacons stalled past 2x the interval.

            A beacon only *arms* its task once a beat stamped with the
            current dispatch's incarnation appears — a file left behind by
            a killed predecessor can neither vouch for nor condemn the
            replacement.  Progress is judged purely by the beat counter
            against this process's monotonic clock.
            """
            assert self.heartbeat_interval is not None and beacon_dir is not None
            now = time.monotonic()
            for future, task in list(inflight.items()):
                record = cancellation.read_beacon(
                    os.path.join(beacon_dir, f"beacon_{task.index}.json")
                )
                if record is None or int(record.get("incarnation", -1)) != (
                    kill_counts.get(task.index, 0)
                ):
                    continue
                count = int(record.get("count", 0))
                seen = progress.get(task.index)
                if seen is None or seen[0] != count:
                    progress[task.index] = (count, now)
                    continue
                if now - seen[1] > 2.0 * self.heartbeat_interval:
                    warnings.warn(
                        f"{task.key.label()}: worker heartbeat stalled for "
                        f"{now - seen[1]:.2f}s (> 2x {self.heartbeat_interval:g}s "
                        "interval); terminating the worker and requeuing",
                        DegradedWarning,
                        stacklevel=3,
                    )
                    progress.pop(task.index, None)
                    _terminate_pid(int(record.get("pid", 0)), self.kill_grace_seconds)
                    # The dead worker breaks the pool; the scheduler loop's
                    # BrokenProcessPool handler requeues this trial through
                    # recover()'s degradation path.

        def terminate_workers(pool: ProcessPoolExecutor) -> None:
            """SIGTERM every live pool worker (cooperative: they snapshot
            at their next poll site and exit 143)."""
            for proc in list(getattr(pool, "_processes", {}).values()):
                if proc.is_alive():
                    proc.terminate()

        pool = self._make_pool()
        pending.extend(task for task in plan.tasks if task.depends_on is None)
        # A timed wait keeps the scheduler responsive to shutdown requests
        # (the SIGINT handler only flips a flag) and paces beacon scans at
        # half the heartbeat interval so a stall is caught within 2x.
        wait_timeout = (
            self.heartbeat_interval / 2.0
            if self.heartbeat_interval is not None
            else 0.5
        )
        try:
            while True:
                try:
                    if cancellation.shutdown_requested():
                        raise cancellation.CancelledError(
                            cancellation.CAUSE_SHUTDOWN,
                            "sweep interrupted by shutdown request",
                        )
                    # Snapshot: submit() re-parks tasks on `pending` when the
                    # pool is broken, and those must not respin this pass.
                    batch, pending[:] = list(pending), []
                    held = {t.index for t in inflight.values()}
                    for task in batch:
                        if task.index not in outcomes and task.index not in held:
                            submit(pool, task)
                    if not inflight:
                        if pending:
                            # Every dispatch bounced: the pool is broken
                            # with nothing in flight.  Rebuild and retry.
                            pool = recover(pool)
                            continue
                        break
                    done, _ = wait(
                        inflight, timeout=wait_timeout, return_when=FIRST_COMPLETED
                    )
                    if beacon_dir is not None:
                        scan_beacons()
                    # Canonical-index order within a completion batch keeps
                    # the parent's bookkeeping deterministic under ties.
                    for future in sorted(done, key=lambda f: inflight[f].index):
                        task = inflight[future]
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            # Leave the future in flight: recover() will
                            # classify it as a victim and requeue it.
                            raise
                        except Exception as error:  # infrastructure failure
                            result = _infrastructure_failure(task, error)
                        del inflight[future]
                        process(pool, task, result)
                except BrokenProcessPool:
                    pool = recover(pool)
        except cancellation.CancelledError:
            # Graceful shutdown: SIGTERM the workers so in-flight trials
            # snapshot at their next poll site and exit, then drain the
            # (broken) pool.  The journal holds every completed cell and
            # the snapshots hold every interrupted trial, so --resume
            # finishes the sweep bit-identically.
            terminate_workers(pool)
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        except BaseException:
            # Injected kill / operator interrupt: drop queued work, let
            # in-flight trials drain, then propagate — the checkpoint holds
            # every cell journalled so far, so --resume picks up from here.
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)
        finally:
            if beacon_dir is not None:
                shutil.rmtree(beacon_dir, ignore_errors=True)
            timings.finish()
        return outcomes


def _infrastructure_failure(task: TrialTask, error: Exception) -> _WorkerResult:
    """Wrap a pool-level error (unpicklable result, worker crash) as a
    structured failure so one bad trial cannot take down the sweep."""
    now = time.monotonic()
    failure = TrialFailure(
        key=task.key,
        attempts=1,
        elapsed_seconds=0.0,
        error_type=type(error).__name__,
        message=str(error),
    )
    return _WorkerResult(
        outcome=TrialOutcome(key=task.key, failure=failure, attempts=1),
        events=(),
        started=now,
        finished=now,
    )


def make_executor(
    jobs: int = 1,
    blas_threads: Optional[int] = None,
    start_method: Optional[str] = None,
    total_cores: Optional[int] = None,
    heartbeat_interval: Optional[float] = None,
    kill_grace_seconds: float = 2.0,
):
    """The executor for ``--jobs N``: serial for 1, process pool otherwise.

    ``jobs`` above the machine's usable core count (``total_cores``
    overrides detection, like :func:`~repro.utils.blas.plan_worker_threads`)
    is clamped with a :class:`~repro.errors.CapacityWarning` — extra
    workers would only multiply peak RSS while time-slicing the same
    cores.  The clamp never drops below 2 once a pool was requested:
    process isolation (and the dead-worker recovery it enables) is a
    semantic choice, not just a speedup, so a 1-core machine still gets a
    pool, only a smaller one.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    cores = cpu_count() if total_cores is None else int(total_cores)
    if cores < 1:
        raise ConfigError(f"total_cores must be >= 1, got {total_cores}")
    limit = max(cores, 2) if jobs >= 2 else cores
    if jobs > limit:
        warnings.warn(
            f"--jobs {jobs} exceeds the {cores} usable CPU core"
            f"{'s' if cores != 1 else ''}; clamping to {limit}",
            CapacityWarning,
            stacklevel=2,
        )
        jobs = limit
    if jobs == 1:
        return SerialTrialExecutor()
    return ParallelTrialExecutor(
        jobs,
        blas_threads=blas_threads,
        start_method=start_method,
        heartbeat_interval=heartbeat_interval,
        kill_grace_seconds=kill_grace_seconds,
    )


# ---------------------------------------------------------------------------
# Deterministic merge


def assemble_table(
    plan: SweepPlan,
    outcomes: dict[int, TrialOutcome],
    cached: dict[tuple[str, str], list[float]],
):
    """Fold outcomes into an :class:`AccuracyTable` in canonical order.

    The iteration order here — rows, then defenders, then seeds, with a
    row's attack failure noted before its cells — IS the serial execution
    order, so the table and the failure appendix are identical no matter
    when each trial actually finished.  Only the canonically-first failure
    per quarantine key is kept: a serial sweep records exactly that one
    (later trials are skipped by quarantine), so normalizing to it makes
    parallel output bit-identical.
    """
    from .runner import AccuracyTable, CellResult

    table = AccuracyTable(dataset=plan.dataset, rate=plan.rate)
    noted: set[tuple] = set()

    def note(failure: TrialFailure) -> None:
        quarantine_key = failure.key.quarantine_key()
        if quarantine_key not in noted:
            noted.add(quarantine_key)
            table.failures.append(failure)

    for row in plan.rows:
        attack = plan.attack_tasks.get(row)
        row_ok = True
        if attack is not None:
            outcome = outcomes.get(attack.index)
            if outcome is not None and not outcome.ok:
                note(outcome.failure)
                row_ok = False
        row_cells: dict[str, Optional[CellResult]] = {}
        for name in plan.defenders:
            values = cached.get((row, name))
            if values is not None:
                row_cells[name] = CellResult.from_values(values)
                continue
            if not row_ok:
                row_cells[name] = None
                continue
            seeds: list[float] = []
            complete = True
            for task in plan.cell_tasks[(row, name)]:
                outcome = outcomes.get(task.index)
                if outcome is None:  # abandoned after an earlier seed failed
                    complete = False
                    break
                if not outcome.ok:
                    note(outcome.failure)
                    complete = False
                    break
                seeds.append(float(outcome.value))
            row_cells[name] = CellResult.from_values(seeds) if complete else None
        table.rows[row] = row_cells
    return table
