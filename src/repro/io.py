"""Serialization: save/load graphs and attack results.

Poisoned graphs are expensive to generate (Table VII), so pipelines cache
them on disk.  The format is a single ``.npz`` holding the CSR adjacency
components, dense features, labels, masks, and (for attack results) the
flip lists and budget metadata — self-contained and dependency-free.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

import numpy as np
import scipy.sparse as sp

from .attacks.base import AttackBudget, AttackResult
from .errors import ReproError
from .graph import EdgeFlip, FeatureFlip, Graph

__all__ = ["save_graph", "load_graph", "save_attack_result", "load_attack_result"]

_FORMAT_VERSION = 1

PathLike = Union[str, Path]


class SerializationError(ReproError, ValueError):
    """Raised when a file is not a valid repro graph/attack archive."""


def _graph_payload(graph: Graph, prefix: str = "") -> dict[str, np.ndarray]:
    adjacency = graph.adjacency.tocsr()
    payload = {
        f"{prefix}adj_data": adjacency.data,
        f"{prefix}adj_indices": adjacency.indices,
        f"{prefix}adj_indptr": adjacency.indptr,
        f"{prefix}adj_shape": np.array(adjacency.shape),
        f"{prefix}features": graph.features,
    }
    if graph.labels is not None:
        payload[f"{prefix}labels"] = graph.labels
    for mask_name in ("train_mask", "val_mask", "test_mask"):
        mask = getattr(graph, mask_name)
        if mask is not None:
            payload[f"{prefix}{mask_name}"] = mask
    return payload


def _graph_from_payload(data: dict, prefix: str, name: str) -> Graph:
    try:
        adjacency = sp.csr_matrix(
            (
                data[f"{prefix}adj_data"],
                data[f"{prefix}adj_indices"],
                data[f"{prefix}adj_indptr"],
            ),
            shape=tuple(data[f"{prefix}adj_shape"]),
        )
        features = data[f"{prefix}features"]
    except KeyError as error:
        raise SerializationError(f"missing field in archive: {error}") from error
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=data.get(f"{prefix}labels"),
        train_mask=data.get(f"{prefix}train_mask"),
        val_mask=data.get(f"{prefix}val_mask"),
        test_mask=data.get(f"{prefix}test_mask"),
        name=name,
    )


def _atomic_savez(path: PathLike, payload: dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` atomically: a kill mid-write never corrupts ``path``.

    Checkpoint archives are re-read on resume, so a torn write must leave
    either the old file or nothing — write to a same-directory temp name
    (kept ``.npz``-suffixed so NumPy does not append an extension) and
    ``os.replace`` into place.
    """
    path = Path(path)
    if path.suffix != ".npz":  # match np.savez's extension-appending behaviour
        path = path.with_name(path.name + ".npz")
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}.npz")
    try:
        np.savez_compressed(tmp, **payload)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def save_graph(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` to a ``.npz`` archive (atomically)."""
    payload = _graph_payload(graph)
    payload["meta"] = np.array(
        json.dumps({"version": _FORMAT_VERSION, "kind": "graph", "name": graph.name})
    )
    _atomic_savez(path, payload)


def load_graph(path: PathLike) -> Graph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        data = {key: archive[key] for key in archive.files}
    meta = _read_meta(data, expected_kind="graph")
    return _graph_from_payload(data, prefix="", name=meta.get("name", "graph"))


def save_attack_result(result: AttackResult, path: PathLike) -> None:
    """Write an :class:`AttackResult` (both graphs + flips) to ``.npz``."""
    payload = _graph_payload(result.original, prefix="orig_")
    payload.update(_graph_payload(result.poisoned, prefix="pois_"))
    payload["edge_flips"] = np.array(
        [(f.u, f.v) for f in result.edge_flips], dtype=np.int64
    ).reshape(-1, 2)
    payload["feature_flips"] = np.array(
        [(f.node, f.dim) for f in result.feature_flips], dtype=np.int64
    ).reshape(-1, 2)
    payload["objective_trace"] = np.asarray(result.objective_trace, dtype=np.float64)
    payload["meta"] = np.array(
        json.dumps(
            {
                "version": _FORMAT_VERSION,
                "kind": "attack_result",
                "name": result.original.name,
                "budget_total": result.budget.total,
                "feature_cost": result.budget.feature_cost,
                "runtime_seconds": result.runtime_seconds,
            }
        )
    )
    _atomic_savez(path, payload)


def load_attack_result(path: PathLike) -> AttackResult:
    """Read an attack result written by :func:`save_attack_result`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        data = {key: archive[key] for key in archive.files}
    meta = _read_meta(data, expected_kind="attack_result")
    name = meta.get("name", "graph")
    result = AttackResult(
        original=_graph_from_payload(data, "orig_", name),
        poisoned=_graph_from_payload(data, "pois_", name),
        budget=AttackBudget(
            total=float(meta["budget_total"]),
            feature_cost=float(meta["feature_cost"]),
        ),
        edge_flips=[EdgeFlip(int(u), int(v)) for u, v in data["edge_flips"]],
        feature_flips=[FeatureFlip(int(n), int(d)) for n, d in data["feature_flips"]],
        objective_trace=list(data["objective_trace"]),
        runtime_seconds=float(meta.get("runtime_seconds", 0.0)),
    )
    return result


def _read_meta(data: dict, expected_kind: str) -> dict:
    if "meta" not in data:
        raise SerializationError("not a repro archive (no meta field)")
    meta = json.loads(str(data["meta"]))
    if meta.get("kind") != expected_kind:
        raise SerializationError(
            f"archive holds a {meta.get('kind')!r}, expected {expected_kind!r}"
        )
    if meta.get("version", 0) > _FORMAT_VERSION:
        raise SerializationError(
            f"archive version {meta['version']} is newer than supported "
            f"({_FORMAT_VERSION})"
        )
    return meta
