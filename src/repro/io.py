"""Serialization: save/load graphs and attack results, with integrity digests.

Poisoned graphs are expensive to generate (Table VII), so pipelines cache
them on disk.  The format is a single ``.npz`` holding the CSR adjacency
components, dense features, labels, masks, and (for attack results) the
flip lists and budget metadata — self-contained and dependency-free.

Format version 2 embeds a per-array SHA-256 digest table in the ``meta``
record and verifies it on load: a bit-flipped, truncated, or key-stripped
archive raises :class:`CorruptArtifactError` naming the file and the
offending array, never yields a silently wrong graph.  Version-1 archives
(written before the digest scheme) still load, with a one-line
"unverified legacy archive" :class:`~repro.errors.IntegrityWarning`.
:func:`journal_record_digest` extends the same scheme to checkpoint
journal records (see :class:`repro.experiments.supervisor.SweepCheckpoint`).
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from .attacks.base import AttackBudget, AttackResult
from .errors import IntegrityWarning, ReproError
from .graph import EdgeFlip, FeatureFlip, Graph, validate_graph

__all__ = [
    "SerializationError",
    "CorruptArtifactError",
    "save_graph",
    "load_graph",
    "save_attack_result",
    "load_attack_result",
    "array_digest",
    "journal_record_digest",
    "atomic_write_json",
    "atomic_write_text",
    "save_snapshot",
    "load_snapshot",
    "peek_snapshot_meta",
]

_FORMAT_VERSION = 2

PathLike = Union[str, Path]


class SerializationError(ReproError, ValueError):
    """Raised when a file is not a valid repro graph/attack archive."""


class CorruptArtifactError(SerializationError):
    """An archive failed integrity verification (bad digest, unreadable
    payload, or an array missing from a digested archive).

    The message always names the file and, when known, the offending array.
    """


# ---------------------------------------------------------------------------
# Digests


def array_digest(array: np.ndarray) -> str:
    """SHA-256 hex digest of an array's dtype, shape, and contents."""
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode())
    digest.update(np.asarray(array.shape, dtype=np.int64).tobytes())
    digest.update(array.tobytes())
    return digest.hexdigest()


def journal_record_digest(record: dict) -> str:
    """SHA-256 hex digest of a journal record's canonical JSON form.

    The record is serialized with sorted keys and *without* any ``sha256``
    field, so the digest is stable under key order and self-exclusive.
    """
    payload = {key: value for key, value in record.items() if key != "sha256"}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


# ---------------------------------------------------------------------------
# Payload assembly


def _graph_payload(graph: Graph, prefix: str = "") -> dict[str, np.ndarray]:
    adjacency = graph.adjacency.tocsr()
    payload = {
        f"{prefix}adj_data": adjacency.data,
        f"{prefix}adj_indices": adjacency.indices,
        f"{prefix}adj_indptr": adjacency.indptr,
        f"{prefix}adj_shape": np.array(adjacency.shape),
        f"{prefix}features": graph.features,
    }
    if graph.labels is not None:
        payload[f"{prefix}labels"] = graph.labels
    for mask_name in ("train_mask", "val_mask", "test_mask"):
        mask = getattr(graph, mask_name)
        if mask is not None:
            payload[f"{prefix}{mask_name}"] = mask
    return payload


def _graph_from_payload(
    data: dict, prefix: str, name: str, path: PathLike, validate: str = "off"
) -> Graph:
    try:
        adjacency = sp.csr_matrix(
            (
                data[f"{prefix}adj_data"],
                data[f"{prefix}adj_indices"],
                data[f"{prefix}adj_indptr"],
            ),
            shape=tuple(data[f"{prefix}adj_shape"]),
        )
        features = data[f"{prefix}features"]
    except KeyError as error:
        raise SerializationError(
            f"{path}: missing field in archive: {error}"
        ) from error
    except (ValueError, TypeError) as error:  # malformed CSR components
        raise CorruptArtifactError(
            f"{path}: adjacency arrays {prefix}adj_* do not form a valid CSR "
            f"matrix ({error})"
        ) from error
    graph = Graph(
        adjacency=adjacency,
        features=features,
        labels=data.get(f"{prefix}labels"),
        train_mask=data.get(f"{prefix}train_mask"),
        val_mask=data.get(f"{prefix}val_mask"),
        test_mask=data.get(f"{prefix}test_mask"),
        name=name,
        validate=False,
    )
    return validate_graph(graph, policy=validate, context=str(path))


def _fsync_path(path: Path) -> None:
    """``fsync`` a file so a rename-over is durable, not just atomic."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    """``fsync`` the directory entry after ``os.replace`` (best effort —
    some filesystems refuse directory fds)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_savez(path: PathLike, payload: dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` atomically: a kill mid-write never corrupts ``path``.

    Checkpoint archives are re-read on resume, so a torn write must leave
    either the old file or nothing — write to a same-directory temp name
    (kept ``.npz``-suffixed so NumPy does not append an extension), fsync,
    and ``os.replace`` into place.
    """
    path = Path(path)
    if path.suffix != ".npz":  # match np.savez's extension-appending behaviour
        path = path.with_name(path.name + ".npz")
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}.npz")
    try:
        np.savez_compressed(tmp, **payload)
        _fsync_path(tmp)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_json(path: PathLike, payload: dict, indent: int = 2) -> None:
    """Write a JSON document atomically and durably (temp + fsync + rename).

    Benchmark reports and other machine-read summaries go through here: a
    power cut or OOM kill mid-write leaves either the previous file or
    nothing, never a half-written document that breaks the next parser.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(json.dumps(payload, indent=indent, sort_keys=True) + "\n")
        _fsync_path(tmp)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write a text document atomically and durably (temp + fsync + rename).

    The human-readable benchmark tables share the same torn-write hazard as
    the JSON reports: ``EXPERIMENTS.md`` references them, so a kill mid-write
    must leave the previous table or nothing.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(text)
        _fsync_path(tmp)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)


def _finalize_payload(payload: dict[str, np.ndarray], meta: dict) -> None:
    """Attach the digest table and serialized meta to an outgoing payload."""
    meta = dict(meta)
    meta["version"] = _FORMAT_VERSION
    meta["digests"] = {key: array_digest(value) for key, value in payload.items()}
    payload["meta"] = np.array(json.dumps(meta))


def save_graph(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` to a ``.npz`` archive (atomically, with digests)."""
    payload = _graph_payload(graph)
    _finalize_payload(payload, {"kind": "graph", "name": graph.name})
    _atomic_savez(path, payload)


def load_graph(path: PathLike, validate: str = "strict") -> Graph:
    """Read a graph written by :func:`save_graph`.

    Array digests are verified first (version-2 archives); the graph then
    passes contract validation under ``validate``
    (``strict``/``repair``/``off`` — see :func:`repro.graph.validate_graph`).
    """
    data, meta = _read_archive(path, expected_kind="graph")
    return _graph_from_payload(
        data, prefix="", name=meta.get("name", "graph"), path=path, validate=validate
    )


def save_attack_result(result: AttackResult, path: PathLike) -> None:
    """Write an :class:`AttackResult` (both graphs + flips) to ``.npz``."""
    payload = _graph_payload(result.original, prefix="orig_")
    payload.update(_graph_payload(result.poisoned, prefix="pois_"))
    payload["edge_flips"] = np.array(
        [(f.u, f.v) for f in result.edge_flips], dtype=np.int64
    ).reshape(-1, 2)
    payload["feature_flips"] = np.array(
        [(f.node, f.dim) for f in result.feature_flips], dtype=np.int64
    ).reshape(-1, 2)
    payload["objective_trace"] = np.asarray(result.objective_trace, dtype=np.float64)
    _finalize_payload(
        payload,
        {
            "kind": "attack_result",
            "name": result.original.name,
            "budget_total": result.budget.total,
            "feature_cost": result.budget.feature_cost,
            "runtime_seconds": result.runtime_seconds,
        },
    )
    _atomic_savez(path, payload)


def load_attack_result(path: PathLike, validate: str = "off") -> AttackResult:
    """Read an attack result written by :func:`save_attack_result`.

    ``validate`` applies graph contract validation to both carried graphs
    (default ``off``: the digest table already guarantees the bytes are the
    ones the attacker wrote, and attack entry points validate their inputs).
    """
    data, meta = _read_archive(path, expected_kind="attack_result")
    name = meta.get("name", "graph")
    try:
        budget = AttackBudget(
            total=float(meta["budget_total"]),
            feature_cost=float(meta["feature_cost"]),
        )
    except KeyError as error:
        raise SerializationError(
            f"{path}: attack archive meta is missing field {error}"
        ) from error
    try:
        edge_flips = [EdgeFlip(int(u), int(v)) for u, v in data["edge_flips"]]
        feature_flips = [FeatureFlip(int(n), int(d)) for n, d in data["feature_flips"]]
        objective_trace = list(data["objective_trace"])
    except KeyError as error:
        raise SerializationError(
            f"{path}: missing field in archive: {error}"
        ) from error
    return AttackResult(
        original=_graph_from_payload(data, "orig_", name, path, validate),
        poisoned=_graph_from_payload(data, "pois_", name, path, validate),
        budget=budget,
        edge_flips=edge_flips,
        feature_flips=feature_flips,
        objective_trace=objective_trace,
        runtime_seconds=float(meta.get("runtime_seconds", 0.0)),
    )


def save_snapshot(path: PathLike, arrays: dict[str, np.ndarray], meta: dict) -> None:
    """Write a mid-trial snapshot archive (atomically, with digests).

    ``arrays`` maps names to ndarrays (weights, optimizer moments, flip
    histories); ``meta`` is any JSON-serializable dict (RNG states, loop
    counters, unit bookkeeping).  The archive reuses the checksummed
    format-v2 machinery, so a torn or bit-flipped snapshot is *detected*
    on load rather than resumed from.
    """
    payload = {
        key: np.ascontiguousarray(value) for key, value in arrays.items()
    }
    _finalize_payload(payload, {"kind": "snapshot", "state": meta})
    _atomic_savez(path, payload)


def load_snapshot(path: PathLike) -> tuple[dict[str, np.ndarray], dict]:
    """Read a snapshot written by :func:`save_snapshot` → ``(arrays, meta)``.

    Raises :class:`CorruptArtifactError` on integrity failure — callers
    (the snapshot sink) treat that as "no snapshot" and restart the trial
    from scratch rather than resuming from damaged state.
    """
    data, meta = _read_archive(path, expected_kind="snapshot")
    data.pop("meta", None)
    state = meta.get("state")
    if not isinstance(state, dict):
        raise CorruptArtifactError(f"{path}: snapshot carries no state record")
    return data, state


def peek_snapshot_meta(path: PathLike) -> Optional[dict]:
    """Best-effort read of a snapshot's state meta without array verification.

    Used by the parallel scheduler to judge forward progress of a killed
    task before deciding whether to degrade its requeue footprint; any
    unreadable or non-snapshot file yields ``None``.
    """
    try:
        with np.load(Path(path), allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
        if meta.get("kind") != "snapshot":
            return None
        state = meta.get("state")
        return state if isinstance(state, dict) else None
    except Exception:  # noqa: BLE001 — peeking must never raise
        return None


# ---------------------------------------------------------------------------
# Reading + verification


def _read_archive(path: PathLike, expected_kind: str) -> tuple[dict, dict]:
    """Load an archive's arrays, verify integrity, and return (data, meta)."""
    path = Path(path)
    if not path.exists():
        # A missing file is an environment error, not a corrupt artifact:
        # let it propagate as FileNotFoundError for the shell/user.
        raise FileNotFoundError(f"{path}: no such archive")
    try:
        with np.load(path, allow_pickle=False) as archive:
            data = {key: archive[key] for key in archive.files}
    except Exception as error:  # noqa: BLE001 — see comment below
        # np.load surfaces corruption in many shapes: zipfile.BadZipFile
        # (OSError), zlib.error, truncated-stream ValueError...  All of them
        # mean the same thing here: the bytes on disk are not the bytes the
        # writer produced.
        raise CorruptArtifactError(
            f"{path}: unreadable archive ({type(error).__name__}: {error})"
        ) from error
    meta = _read_meta(data, expected_kind, path)
    version = int(meta.get("version", 0))
    if version >= 2:
        _verify_digests(data, meta, path)
    else:
        warnings.warn(
            f"{path}: unverified legacy archive (format v{version}, no digests)",
            IntegrityWarning,
            stacklevel=3,
        )
    return data, meta


def _verify_digests(data: dict, meta: dict, path: Path) -> None:
    digests = meta.get("digests")
    if not isinstance(digests, dict):
        raise CorruptArtifactError(
            f"{path}: version-{meta.get('version')} archive carries no digest table"
        )
    missing = sorted(set(digests) - set(data))
    if missing:
        raise CorruptArtifactError(
            f"{path}: digested arrays missing from archive: {missing}"
        )
    for key, array in data.items():
        if key == "meta":
            continue
        expected = digests.get(key)
        if expected is None:
            raise CorruptArtifactError(
                f"{path}: array {key!r} has no recorded digest"
            )
        actual = array_digest(array)
        if actual != expected:
            raise CorruptArtifactError(
                f"{path}: array {key!r} failed SHA-256 verification "
                f"(expected {expected[:12]}…, got {actual[:12]}…)"
            )


def _read_meta(data: dict, expected_kind: str, path: PathLike) -> dict:
    if "meta" not in data:
        raise SerializationError(f"{path}: not a repro archive (no meta field)")
    try:
        meta = json.loads(str(data["meta"]))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CorruptArtifactError(
            f"{path}: meta record is not valid JSON ({error})"
        ) from error
    if not isinstance(meta, dict):
        raise CorruptArtifactError(f"{path}: meta record is not a JSON object")
    if meta.get("kind") != expected_kind:
        raise SerializationError(
            f"{path}: archive holds a {meta.get('kind')!r}, "
            f"expected {expected_kind!r}"
        )
    if meta.get("version", 0) > _FORMAT_VERSION:
        raise SerializationError(
            f"{path}: archive version {meta['version']} is newer than supported "
            f"({_FORMAT_VERSION})"
        )
    return meta
