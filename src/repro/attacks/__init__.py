"""Attackers: the shared framework and every baseline from the paper's
Table I that the evaluation uses, plus standard sanity baselines."""

from .base import AttackBudget, Attacker, AttackResult, resolve_budget
from .constraints import AttackerNodes, sample_attacker_nodes
from .dice import DICE
from .gf_attack import GFAttack
from .metattack import Metattack
from .minmax import MinMaxAttack
from .nettack import Nettack
from .pgd import PGDAttack
from .random_attack import RandomAttack
from .rbcd import GRBCD, PRBCD

__all__ = [
    "Attacker",
    "AttackBudget",
    "AttackResult",
    "resolve_budget",
    "AttackerNodes",
    "sample_attacker_nodes",
    "RandomAttack",
    "DICE",
    "PGDAttack",
    "MinMaxAttack",
    "Nettack",
    "Metattack",
    "GFAttack",
    "PRBCD",
    "GRBCD",
]
