"""Sampled-block structure attacks: PRBCD and GRBCD.

Every other attacker in the repo scores an O(n²) candidate space per step
(PEEGA's dense candidate directions, Metattack's unrolled dense surrogate),
which caps the threat model at toy graphs.  *Robustness of Graph Neural
Networks at Scale* (Geisler et al., NeurIPS 2021 — see PAPERS.md) shows that
randomized block coordinate descent makes structure attacks tractable at
millions of nodes: per iteration, sample a block of candidate edge
perturbations with replacement, score only that block, and either commit the
best flips greedily (GRBCD) or ascend a relaxed edge-weight vector, project
it onto the budget, resample the zero-mass remainder, and commit the
top-mass flips at the end (PRBCD).

Both attackers here drive the paper's black-box representation-difference
objective (``Dif1 + λ·Dif2`` over the linear surrogate ``A_n^l X``) instead
of a label-based loss — they are PEEGA's objective carried to scale, not a
new threat model.  Scoring goes through
:meth:`~repro.core.difference.IncrementalScorer.pair_gradients`: closed-form
sparse gradients restricted to the sampled pairs, with the cache's dirty-row
patching amortizing everything a committed flip touches.  Per-iteration cost
is O(block · layers · d), never O(n²).

Exhaustive reduction: when ``block_size`` covers the whole candidate space
``n(n-1)/2`` the samplers disappear and scoring routes through the
full-matrix engine — GRBCD becomes exactly PEEGA's topology-only greedy
(bit-identical flip sequences, including argpartition tie order) and PRBCD's
top-mass commit reduces to exhaustive top-δ selection.  The equivalence tier
in ``tests/test_rbcd_equivalence.py`` locks both down against the dense
oracle.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

import numpy as np

from ..core.difference import DifferenceObjective, IncrementalScorer
from ..errors import ConfigError, DegradedWarning
from ..graph import EdgeFlip, Graph, apply_perturbations
from ..surrogate import PropagationCache
from ..utils import cancellation, faults, snapshots
from ..utils.rng import SeedLike
from .base import AttackBudget, Attacker, AttackResult

__all__ = [
    "PRBCD",
    "GRBCD",
    "sample_candidate_pairs",
    "encode_pair_keys",
    "decode_pair_keys",
    "project_onto_budget",
]


def encode_pair_keys(uu: np.ndarray, vv: np.ndarray, num_nodes: int) -> np.ndarray:
    """Canonical int64 key ``min·n + max`` for undirected pairs."""
    lo = np.minimum(uu, vv).astype(np.int64)
    hi = np.maximum(uu, vv).astype(np.int64)
    return lo * num_nodes + hi


def decode_pair_keys(keys: np.ndarray, num_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_pair_keys` — returns ``(uu, vv)`` with u < v."""
    return keys // num_nodes, keys % num_nodes


def sample_candidate_pairs(
    rng: np.random.Generator,
    num_nodes: int,
    count: int,
    exclude_keys: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample ``count`` undirected candidate pairs with replacement.

    Returns the *deduplicated* canonical keys, sorted ascending (so the
    realized block is typically a little smaller than ``count``).
    Self-pairs are rejected and ``exclude_keys`` (sorted unique keys — e.g.
    already-flipped pairs or the kept block remainder) never reappear.
    """
    uu = rng.integers(0, num_nodes, size=count, dtype=np.int64)
    vv = rng.integers(0, num_nodes, size=count, dtype=np.int64)
    keep = uu != vv
    keys = np.unique(encode_pair_keys(uu[keep], vv[keep], num_nodes))
    if exclude_keys is not None and len(exclude_keys):
        keys = keys[~np.isin(keys, exclude_keys, assume_unique=True)]
    return keys


def project_onto_budget(
    weights: np.ndarray, budget: float, iterations: int = 64
) -> np.ndarray:
    """Euclidean projection onto ``{w : 0 ≤ w ≤ 1, Σw ≤ budget}``.

    Bisection on the simplex shift θ with a fixed iteration count —
    deterministic, and *monotone* in the input: ``w_i > w_j`` never reverses
    under the projection.  With static scores this makes the committed mass
    order equal the score order, which is what reduces full-block PRBCD to
    exhaustive top-δ selection (the equivalence tier).
    """
    clipped = np.clip(weights, 0.0, 1.0)
    if float(clipped.sum()) <= budget:
        return clipped
    lo = float(weights.min()) - 1.0
    hi = float(weights.max())
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if float(np.clip(weights - mid, 0.0, 1.0).sum()) > budget:
            lo = mid
        else:
            hi = mid
    return np.clip(weights - hi, 0.0, 1.0)


class _BlockCoordinateAttacker(Attacker):
    """Shared setup/scoring for the sampled-block structure attackers.

    Topology-only by construction (feature flips have an O(n·d) candidate
    space and need no block sampling — combine with PEEGA's FP attack if
    both are wanted).  Parameters mirror PEEGA's objective knobs; ``lam``
    defaults to 0 because the global view keeps O(E·d) per-edge gradient
    state, which is the one buffer worth skipping at the 1M tier.
    """

    requires_labels = False
    requires_model = False
    requires_predictions = False

    def __init__(
        self,
        lam: float = 0.0,
        p: Union[int, float] = 2,
        layers: int = 2,
        block_size: int = 100_000,
        focus_training_nodes: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if block_size < 1:
            raise ConfigError(f"block_size must be >= 1, got {block_size}")
        if layers < 1:
            raise ConfigError(f"layers must be >= 1, got {layers}")
        self.lam = float(lam)
        self.p = p
        self.layers = int(layers)
        self.block_size = int(block_size)
        self.focus_training_nodes = bool(focus_training_nodes)
        # Working block size for the current run.  Starts at ``block_size``
        # every run and halves each time a block allocation raises
        # ``MemoryError`` (see ``_shrink_block``) — never mutates the
        # configured ``block_size``, so attacker instances stay reusable.
        self._active_block = self.block_size

    # ------------------------------------------------------------------
    def _make_scorer(self, graph: Graph) -> tuple[PropagationCache, IncrementalScorer]:
        node_mask = (
            graph.train_mask
            if self.focus_training_nodes and graph.train_mask is not None
            else None
        )
        cache = PropagationCache(graph)
        objective = DifferenceObjective(
            graph,
            layers=self.layers,
            p=self.p,
            lam=self.lam,
            node_mask=node_mask,
            cache=cache,
        )
        return cache, IncrementalScorer(objective, cache)

    def _is_exhaustive(self, num_nodes: int) -> bool:
        return self._active_block >= num_nodes * (num_nodes - 1) // 2

    def _shrink_block(self, error: BaseException) -> bool:
        """Halve the working block after a ``MemoryError``; False when spent.

        The shrink is deterministic given the failure point (no clocks, no
        sampling), so an injected ``rbcd:oom`` fault reproduces the exact
        degraded flip sequence.  Returns False once the block cannot shrink
        below a single pair, at which point the error must propagate to the
        supervisor's process-level ladder.
        """
        if self._active_block <= 1:
            return False
        self._active_block = max(1, self._active_block // 2)
        warnings.warn(
            f"{self.name}: candidate block exhausted memory ({error!r}); "
            f"retrying with block_size={self._active_block}",
            DegradedWarning,
            stacklevel=3,
        )
        return True

    def _block_scores(
        self,
        scorer: IncrementalScorer,
        cache: PropagationCache,
        features: np.ndarray,
        uu: np.ndarray,
        vv: np.ndarray,
        exhaustive: bool,
    ) -> tuple[np.ndarray, float]:
        """Flip scores ``S = (∇_Â L + ∇_Â Lᵀ) ⊙ (1 − 2Â)`` at the pairs.

        Sampled blocks use the O(block) pair kernel.  Exhaustive blocks
        gather from the full-matrix engine instead: its entries are the ones
        locked bitwise to the dense oracle, so "block ≥ candidate space"
        degenerates to exactly the scoring PEEGA performs — including the
        last-ulp bit patterns that decide p=1 tie order.  (The pair kernel
        agrees with those entries only to ~1e-12 relative: BLAS uses
        different tile paths for block-diagonal GEMMs, see
        ``pairwise_gemm_dots``.)
        """
        direction = 1.0 - 2.0 * cache.has_edges(uu, vv).astype(np.float64)
        if exhaustive:
            grads = scorer.gradients(features, need_features=False)
            return grads.grad_topology[uu, vv] * direction, grads.loss
        pair = scorer.pair_gradients(features, uu, vv)
        return pair.grad_pairs * direction, pair.loss


class GRBCD(_BlockCoordinateAttacker):
    """Greedy Randomized Block Coordinate Descent structure attack.

    Per step: sample a fresh block of candidate pairs (excluding pairs
    already flipped), score it with the closed-form pair kernel, commit the
    ``flips_per_step`` highest-scoring flips through the incremental cache,
    repeat until the budget is spent.

    With ``block_size ≥ n(n-1)/2`` the block is the whole candidate space
    and the selection replicates PEEGA's ranking code path bit for bit —
    the attack *is* topology-only PEEGA.
    """

    name = "GRBCD"

    def __init__(
        self,
        lam: float = 0.0,
        p: Union[int, float] = 2,
        layers: int = 2,
        block_size: int = 100_000,
        flips_per_step: int = 1,
        focus_training_nodes: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(
            lam=lam,
            p=p,
            layers=layers,
            block_size=block_size,
            focus_training_nodes=focus_training_nodes,
            seed=seed,
        )
        if flips_per_step < 1:
            raise ConfigError(f"flips_per_step must be >= 1, got {flips_per_step}")
        self.flips_per_step = int(flips_per_step)

    # ------------------------------------------------------------------
    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        n = graph.num_nodes
        self._active_block = self.block_size
        cache, scorer = self._make_scorer(graph)
        features = np.asarray(graph.features, dtype=np.float64)
        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        exhaustive = self._is_exhaustive(n)
        k = self.flips_per_step
        spent = 0.0
        flipped_keys = np.empty(0, dtype=np.int64)
        edge_allowed: Optional[np.ndarray] = None
        if exhaustive:
            edge_allowed = np.triu(np.ones((n, n), dtype=bool), k=1)

        # Preemption: flips + sampler position + working block geometry are
        # the whole loop state.  The cached A_n is a pure function of the
        # current topology, so replaying the recorded flips as one batch
        # reconstructs it bit-exactly mid-attack.
        unit = snapshots.begin_unit(f"attack:{self.name}")
        resumed = unit.resume_state()
        if resumed is not None:
            arrays, meta = resumed
            batch = [EdgeFlip(int(u), int(v)) for u, v in arrays["flip_uv"]]
            cache.apply_batch(batch)
            result.edge_flips.extend(batch)
            result.objective_trace = [float(x) for x in arrays["objective_trace"]]
            spent = float(meta["spent"])
            self._active_block = int(meta["active_block"])
            exhaustive = bool(meta["exhaustive"])
            if len(batch):
                flipped_keys = np.unique(
                    np.asarray([flip.u * n + flip.v for flip in batch], dtype=np.int64)
                )
            if exhaustive:
                if edge_allowed is None:
                    edge_allowed = np.triu(np.ones((n, n), dtype=bool), k=1)
                for flip in batch:
                    edge_allowed[flip.u, flip.v] = False
            snapshots.restore_generator(self._rng, meta["rng"])

        def attack_state() -> tuple[dict, dict]:
            return (
                {
                    "flip_uv": np.asarray(
                        [(f.u, f.v) for f in result.edge_flips], dtype=np.int64
                    ).reshape(-1, 2),
                    "objective_trace": np.asarray(
                        result.objective_trace, dtype=np.float64
                    ),
                },
                {
                    "step": len(result.objective_trace),
                    "spent": spent,
                    "active_block": self._active_block,
                    "exhaustive": exhaustive,
                    "rng": snapshots.generator_state(self._rng),
                },
            )

        while spent + 1.0 <= budget.total + 1e-12:
            try:
                faults.perturb(
                    "rbcd", attacker=self.name, block=self._active_block
                )
                cancellation.checkpoint(
                    "rbcd",
                    unit=unit,
                    state=attack_state,
                    attacker=self.name,
                    step=len(result.objective_trace),
                )
                if exhaustive:
                    uu, vv = np.nonzero(edge_allowed)
                else:
                    keys = sample_candidate_pairs(
                        self._rng, n, self._active_block, exclude_keys=flipped_keys
                    )
                    uu, vv = decode_pair_keys(keys, n)
                if len(uu) == 0:
                    break
                scores, loss = self._block_scores(
                    scorer, cache, features, uu, vv, exhaustive
                )
            except MemoryError as error:
                if not self._shrink_block(error):
                    raise
                # A shrunken block may no longer cover the candidate space;
                # ``flipped_keys`` is maintained in both modes, so dropping
                # to sampled blocks keeps the already-flipped exclusion.
                exhaustive = exhaustive and self._is_exhaustive(n)
                continue
            result.objective_trace.append(loss)

            if exhaustive:
                selected = _rank_like_peega(scores, uu, vv, edge_allowed, k)
            else:
                order = np.argsort(-scores, kind="stable")[:k]
                selected = [(int(uu[i]), int(vv[i])) for i in order]

            batch: list[EdgeFlip] = []
            new_keys: list[int] = []
            for u, v in selected:
                if spent + 1.0 > budget.total + 1e-12:
                    continue
                batch.append(EdgeFlip(u, v))
                new_keys.append(u * n + v)
                if exhaustive:
                    edge_allowed[u, v] = False
                spent += 1.0
            cache.apply_batch(batch)
            result.edge_flips.extend(batch)
            if not batch:
                break
            if new_keys:
                flipped_keys = np.union1d(
                    flipped_keys, np.asarray(new_keys, dtype=np.int64)
                )

        result.poisoned = apply_perturbations(graph, result.edge_flips)
        return result


def _rank_like_peega(
    scores: np.ndarray,
    uu: np.ndarray,
    vv: np.ndarray,
    edge_allowed: np.ndarray,
    k: int,
) -> list[tuple[int, int]]:
    """PEEGA's dense top-k candidate ranking, replicated op for op.

    Scattering the pair scores back into an ``(n, n)`` mask and running the
    *same* negate/argpartition/stable-sort sequence reproduces PEEGA's
    selection bitwise — including the order argpartition leaves exact ties
    in, which decides flip sequences at p = 1 (tie-dense scores).  Only the
    exhaustive path comes here, so the dense scatter is by definition
    affordable.
    """
    n = edge_allowed.shape[0]
    score_matrix = np.zeros((n, n), dtype=np.float64)
    score_matrix[uu, vv] = scores
    masked = np.where(edge_allowed, score_matrix, -np.inf)
    np.negative(masked, out=masked)
    flat = np.argpartition(masked.ravel(), min(k, masked.size - 1))[: k + 1]
    entries: list[tuple[float, int, int]] = []
    for idx in flat:
        u, v = divmod(int(idx), n)
        if np.isfinite(masked[u, v]):
            entries.append((float(-masked[u, v]), u, v))
    entries.sort(key=lambda e: e[0], reverse=True)
    return [(u, v) for _, u, v in entries[:k]]


class PRBCD(_BlockCoordinateAttacker):
    """Projected Randomized Block Coordinate Descent structure attack.

    Keeps a relaxed weight ``w ∈ [0, 1]`` per candidate pair in the current
    block.  Each epoch: score the block at the clean state, ascend ``w``
    along the scores, project onto ``{0 ≤ w ≤ 1, Σw ≤ δ}``, and resample
    the part of the block the projection zeroed out (``w ≤ mass_floor``).
    The final answer is the last epoch's rounding: the top-δ mass entries.

    Two deviations from the label-loss original, both forced by the paper's
    clean-anchored objective (``L(A) = 0`` is the *global minimum* with an
    identically-zero gradient — a trained GNN's loss has neither property):

    * **Rounded-state scoring.**  Gradients are evaluated at the current
      integral rounding of ``w`` (its top-δ mass entries), not at the clean
      graph.  The rounding is kept live in the incremental cache — edge
      flips are involutions, so moving between consecutive roundings costs
      one dirty-row patch per changed pair, and every epoch stays O(block).
    * **Degenerate-state kick.**  At the clean state every score is zero
      and ascent cannot start, exactly as PEEGA's first greedy step is
      decided purely by tie order.  When that happens the first epoch
      seeds unit mass on the top-δ candidates of the *same* ranking PEEGA
      uses (bit-for-bit in exhaustive mode), so the two methods break the
      degeneracy identically.  This makes ``epochs=1`` exhaustive PRBCD
      reduce to one-shot PEEGA with ``flips_per_step=δ`` — flip sequence
      and all — while additional epochs let the mass migrate from the
      arbitrary kick onto genuinely high-gradient flips.

    Parameters
    ----------
    epochs / lr:
        Ascent schedule.  The step is scale-normalized
        (``lr · δ · S / max|S|``), so ``lr`` is a fraction of the budget
        moved along the best direction per epoch.
    mass_floor:
        Resampling threshold: block entries whose projected mass is at or
        below it are replaced with fresh samples between epochs (the
        projection clips most of the block to exactly 0, so the default 0.0
        already recycles aggressively).
    """

    name = "PRBCD"

    def __init__(
        self,
        lam: float = 0.0,
        p: Union[int, float] = 2,
        layers: int = 2,
        block_size: int = 100_000,
        epochs: int = 25,
        lr: float = 0.1,
        mass_floor: float = 0.0,
        focus_training_nodes: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(
            lam=lam,
            p=p,
            layers=layers,
            block_size=block_size,
            focus_training_nodes=focus_training_nodes,
            seed=seed,
        )
        if epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {epochs}")
        if lr <= 0:
            raise ConfigError(f"lr must be positive, got {lr}")
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.mass_floor = float(mass_floor)

    # ------------------------------------------------------------------
    @staticmethod
    def _commit_order(
        keys: np.ndarray,
        weights: np.ndarray,
        scores: np.ndarray,
        kick_rank: np.ndarray,
    ) -> np.ndarray:
        """Deterministic rounding order: mass desc, kick rank asc, score
        desc, canonical key asc.  The kick rank slot is what keeps the
        all-ties first epoch on PEEGA's exact tie order."""
        return np.lexsort((keys, -scores, kick_rank, -weights))

    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        n = graph.num_nodes
        self._active_block = self.block_size
        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        delta = int(np.floor(budget.total + 1e-12))
        if delta < 1:
            return result
        cache, scorer = self._make_scorer(graph)
        features = np.asarray(graph.features, dtype=np.float64)
        exhaustive = self._is_exhaustive(n)
        if exhaustive:
            iu, iv = np.triu_indices(n, k=1)
            keys = encode_pair_keys(iu, iv, n)
        else:
            keys = sample_candidate_pairs(self._rng, n, self._active_block)
        unranked = np.iinfo(np.int64).max
        weights = np.zeros(len(keys), dtype=np.float64)
        scores = np.zeros(len(keys), dtype=np.float64)
        kick_rank = np.full(len(keys), unranked, dtype=np.int64)
        committed = np.empty(0, dtype=np.int64)
        # ``pending`` is the rounding currently applied in the cache (in
        # commit order); its objective is only known at the next scoring.
        # The answer is the best rounding *measured*, not the last one —
        # first-order re-rounding can flap between near-ties.
        pending = np.empty(0, dtype=np.int64)
        best_loss = -np.inf
        best_commit = pending
        start_epoch = 0

        # Preemption: the relaxed iterate (weights over the current block),
        # the rounding applied in the cache (``committed``) and the sampler
        # position capture the whole epoch loop.  The cache is rebuilt on
        # resume by applying ``committed`` as one batch — A_n is a pure
        # function of topology, so this matches the interrupted state
        # bit-exactly.
        unit = snapshots.begin_unit(f"attack:{self.name}")
        resumed = unit.resume_state()
        if resumed is not None:
            arrays, meta = resumed
            keys = arrays["keys"]
            weights = arrays["weights"]
            scores = arrays["scores"]
            kick_rank = arrays["kick_rank"]
            committed = arrays["committed"]
            pending = arrays["pending"]
            best_commit = arrays["best_commit"]
            result.objective_trace = [float(x) for x in arrays["objective_trace"]]
            best_loss = float(meta["best_loss"])
            start_epoch = int(meta["epoch"])
            self._active_block = int(meta["active_block"])
            exhaustive = bool(meta["exhaustive"])
            cache.apply_batch(
                EdgeFlip(*divmod(int(key), n)) for key in committed
            )
            snapshots.restore_generator(self._rng, meta["rng"])

        def attack_state() -> tuple[dict, dict]:
            return (
                {
                    "keys": keys,
                    "weights": weights,
                    "scores": scores,
                    "kick_rank": kick_rank,
                    "committed": committed,
                    "pending": pending,
                    "best_commit": best_commit,
                    "objective_trace": np.asarray(
                        result.objective_trace, dtype=np.float64
                    ),
                },
                {
                    "step": len(result.objective_trace),
                    "epoch": epoch,
                    "best_loss": best_loss,
                    "active_block": self._active_block,
                    "exhaustive": exhaustive,
                    "rng": snapshots.generator_state(self._rng),
                },
            )

        for epoch in range(start_epoch, self.epochs):
            while True:
                try:
                    faults.perturb(
                        "rbcd", attacker=self.name, epoch=epoch, block=len(keys)
                    )
                    cancellation.checkpoint(
                        "rbcd",
                        unit=unit,
                        state=attack_state,
                        attacker=self.name,
                        epoch=epoch,
                    )
                    uu, vv = decode_pair_keys(keys, n)
                    scores, loss = self._block_scores(
                        scorer, cache, features, uu, vv, exhaustive
                    )
                    break
                except MemoryError as error:
                    if not self._shrink_block(error):
                        raise
                    exhaustive = exhaustive and self._is_exhaustive(n)
                    # Shed block mass deterministically: keep the
                    # highest-mass entries (kick rank, then canonical key,
                    # break ties), never fewer than δ so the rounding can
                    # still spend the whole budget.  Entries already applied
                    # in the cache but dropped here get un-flipped by the
                    # next re-rounding's symmetric difference.
                    keep_count = min(len(keys), max(self._active_block, delta))
                    if keep_count < len(keys):
                        sel = np.sort(
                            np.lexsort((keys, kick_rank, -weights))[:keep_count]
                        )
                        keys = keys[sel]
                        weights = weights[sel]
                        scores = scores[sel]
                        kick_rank = kick_rank[sel]
            # Objective at the current integral iterate (the rounding the
            # scores were just evaluated at) — epoch 0 is the clean graph.
            result.objective_trace.append(loss)
            if loss >= best_loss:
                best_loss = loss
                best_commit = pending

            max_abs = float(np.max(np.abs(scores))) if len(scores) else 0.0
            if max_abs > 0.0:
                weights = weights + (self.lr * delta / max_abs) * scores
                weights = project_onto_budget(weights, float(delta))
            elif len(weights) and float(weights.max()) <= 0.0:
                # Degenerate state: the clean-anchored objective has a
                # zero gradient here, so ascent cannot start.  Seed unit
                # mass on the top-δ candidates of PEEGA's own tie ranking
                # (Σw = δ, so the projection is a no-op).
                seed_count = min(delta, len(keys))
                if exhaustive:
                    allowed = np.triu(np.ones((n, n), dtype=bool), k=1)
                    if len(committed):
                        cu, cv = decode_pair_keys(committed, n)
                        allowed[cu, cv] = False
                    selection = _rank_like_peega(scores, uu, vv, allowed, seed_count)
                    idxs = np.searchsorted(
                        keys,
                        np.asarray([u * n + v for u, v in selection], dtype=np.int64),
                    )
                else:
                    idxs = np.arange(seed_count)
                weights[idxs] = 1.0
                kick_rank[idxs] = np.arange(len(idxs), dtype=np.int64)

            # Re-round: apply the symmetric difference between the cache's
            # committed state and the new top-δ mass through the
            # incremental engine (flips are involutions, so leaving the
            # rounding is the same dirty-row patch as entering it).
            order = self._commit_order(keys, weights, scores, kick_rank)
            sel = order[weights[order] > 0.0][:delta]
            pending = keys[sel]
            target = np.sort(pending)
            cache.apply_batch(
                EdgeFlip(*divmod(int(key), n))
                for key in np.setxor1d(committed, target, assume_unique=True)
            )
            committed = target

            if not exhaustive and epoch < self.epochs - 1:
                keep = weights > self.mass_floor
                if not keep.all():
                    kept_keys = keys[keep]
                    fresh = sample_candidate_pairs(
                        self._rng, n, self._active_block, exclude_keys=kept_keys
                    )
                    need = max(0, self._active_block - len(kept_keys))
                    if len(fresh) > need:
                        fresh = self._rng.choice(fresh, size=need, replace=False)
                        fresh.sort()
                    merged = np.concatenate([kept_keys, fresh])
                    order = np.argsort(merged, kind="stable")
                    keys = merged[order]
                    weights = np.concatenate(
                        [weights[keep], np.zeros(len(fresh))]
                    )[order]
                    scores = np.concatenate(
                        [scores[keep], np.zeros(len(fresh))]
                    )[order]
                    kick_rank = np.concatenate(
                        [
                            kick_rank[keep],
                            np.full(len(fresh), unranked, dtype=np.int64),
                        ]
                    )[order]

        # Measure the last rounding (the loss any pair set returns is the
        # objective at the cache's current state — pairs themselves are
        # irrelevant here, so score an empty block).
        empty = np.empty(0, dtype=np.int64)
        _, loss = self._block_scores(scorer, cache, features, empty, empty, False)
        result.objective_trace.append(loss)
        if loss >= best_loss:
            best_commit = pending

        for key in best_commit:
            u, v = divmod(int(key), n)
            result.edge_flips.append(EdgeFlip(u, v))
        result.poisoned = apply_perturbations(graph, result.edge_flips)
        return result
