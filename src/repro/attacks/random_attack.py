"""Random perturbation baseline.

Not part of the paper's headline tables but the standard sanity baseline in
the attack literature: flips uniformly random node pairs (and optionally
feature bits).  Any attacker worth reporting must beat it.
"""

from __future__ import annotations

import numpy as np

from ..graph import EdgeFlip, FeatureFlip, Graph, apply_perturbations
from ..utils.rng import SeedLike
from .base import AttackBudget, Attacker, AttackResult

__all__ = ["RandomAttack"]


class RandomAttack(Attacker):
    """Flip uniformly random edges (and features when ``feature_prob > 0``)."""

    name = "Random"

    def __init__(self, feature_prob: float = 0.0, seed: SeedLike = None) -> None:
        super().__init__(seed)
        if not 0.0 <= feature_prob <= 1.0:
            raise ValueError(f"feature_prob must lie in [0, 1], got {feature_prob}")
        self.feature_prob = float(feature_prob)

    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        n, d = graph.num_nodes, graph.num_features
        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        spent = 0.0
        seen_edges: set[tuple[int, int]] = set()
        seen_feats: set[tuple[int, int]] = set()
        min_cost = min(1.0, budget.feature_cost) if self.feature_prob > 0 else 1.0
        # Attempt cap: a budget larger than the untouched pair/bit space
        # must terminate rather than spin on already-seen candidates.
        max_pairs = n * (n - 1) // 2 + (n * d if self.feature_prob > 0 else 0)
        attempts = 0
        max_attempts = 100 * int(budget.total + 1) + 20 * max_pairs

        while spent + min_cost <= budget.total + 1e-12:
            attempts += 1
            if attempts > max_attempts:
                break
            if len(seen_edges) >= n * (n - 1) // 2 and (
                self.feature_prob == 0 or len(seen_feats) >= n * d
            ):
                break
            if self.feature_prob > 0 and self._rng.random() < self.feature_prob:
                if spent + budget.feature_cost > budget.total + 1e-12:
                    break
                node = int(self._rng.integers(0, n))
                dim = int(self._rng.integers(0, d))
                if (node, dim) in seen_feats:
                    continue
                seen_feats.add((node, dim))
                result.feature_flips.append(FeatureFlip(node, dim))
                spent += budget.feature_cost
            else:
                u, v = self._rng.integers(0, n, size=2)
                if u == v:
                    continue
                key = (int(min(u, v)), int(max(u, v)))
                if key in seen_edges:
                    continue
                seen_edges.add(key)
                result.edge_flips.append(EdgeFlip(*key))
                spent += 1.0

        result.poisoned = apply_perturbations(
            graph, result.edge_flips + result.feature_flips
        )
        return result
