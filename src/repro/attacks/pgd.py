"""PGD topology attack (Xu et al., 2019) — white-box baseline.

Trains the target GCN, freezes its parameters, then runs projected gradient
ascent on a continuous edge-perturbation variable ``S ∈ [0,1]^{n×n}``:

    Â(S) = A + (1 − 2A) ⊙ S,

maximizing the cross-entropy of the frozen model on the labelled nodes.
After the ascent, the continuous solution is discretized by random sampling
(keep the best Bernoulli(S) draw within budget), as in the original paper.

White-box access: graph, labels, and trained GNN parameters (Table I row 1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..graph import EdgeFlip, Graph, apply_perturbations, gcn_normalize_dense
from ..nn import GCN, TrainConfig, train_node_classifier
from ..tensor import Tensor, functional as F
from ..utils.rng import SeedLike
from .base import AttackBudget, Attacker, AttackResult

__all__ = ["PGDAttack", "project_budget_box"]


def project_budget_box(values: np.ndarray, budget: float) -> np.ndarray:
    """Project onto ``{s : 0 <= s <= 1, sum(s) <= budget}`` (bisection on μ)."""
    clipped = np.clip(values, 0.0, 1.0)
    if clipped.sum() <= budget:
        return clipped
    low, high = values.min() - 1.0, values.max()
    for _ in range(60):
        mu = 0.5 * (low + high)
        total = np.clip(values - mu, 0.0, 1.0).sum()
        if total > budget:
            low = mu
        else:
            high = mu
    return np.clip(values - high, 0.0, 1.0)


class PGDAttack(Attacker):
    """Projected-gradient-descent topology attack with a frozen victim GCN."""

    name = "PGD"
    requires_labels = True
    requires_model = True

    def __init__(
        self,
        steps: int = 80,
        lr: float = 0.5,
        samples: int = 20,
        hidden_dim: int = 16,
        train_config: Optional[TrainConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if steps < 1 or samples < 1:
            raise ConfigError("steps and samples must be >= 1")
        self.steps = int(steps)
        self.lr = float(lr)
        self.samples = int(samples)
        self.hidden_dim = int(hidden_dim)
        self.train_config = train_config or TrainConfig(epochs=150)

    # ------------------------------------------------------------------
    def _train_victim(self, graph: Graph) -> GCN:
        model = GCN(
            graph.num_features,
            graph.num_classes,
            hidden_dim=self.hidden_dim,
            dropout=0.0,
            seed=self._rng.integers(0, 2**31),
        )
        train_node_classifier(model, graph, self.train_config)
        model.eval()
        return model

    def _attack_labels(self, model: GCN, graph: Graph) -> np.ndarray:
        """Labels the ascent maximizes CE against.

        Following the untargeted PGD formulation, the attack uses the frozen
        model's *own predictions* as labels over all nodes (known labels on
        the training set), so no test labels are consulted.
        """
        from ..graph import gcn_normalize

        predicted = model.predict(gcn_normalize(graph.adjacency), Tensor(graph.features))
        labels = predicted.copy()
        if graph.labels is not None and graph.train_mask is not None:
            labels[graph.train_mask] = graph.labels[graph.train_mask]
        return labels

    def _attack_loss(
        self, model: GCN, s_matrix: Tensor, graph: Graph, labels: np.ndarray
    ) -> Tensor:
        adj = Tensor(graph.dense_adjacency())
        direction = Tensor(1.0 - 2.0 * graph.dense_adjacency())
        perturbed = adj + direction * s_matrix
        normalized = gcn_normalize_dense(perturbed)
        logits = model.forward(normalized, Tensor(graph.features))
        return F.cross_entropy(logits, labels)

    def _ascend(
        self, model: GCN, graph: Graph, budget: AttackBudget, labels: np.ndarray
    ) -> np.ndarray:
        """Run the projected gradient ascent, returning the continuous S."""
        n = graph.num_nodes
        triu = np.triu(np.ones((n, n), dtype=bool), k=1)
        s = np.zeros((n, n))
        for step in range(self.steps):
            s_tensor = Tensor(s, requires_grad=True)
            loss = self._attack_loss(model, s_tensor, graph, labels)
            loss.backward()
            grad = s_tensor.grad if s_tensor.grad is not None else np.zeros_like(s)
            grad = grad + grad.T  # keep S symmetric
            step_size = self.lr / np.sqrt(step + 1.0)
            s_vec = s[triu] + step_size * grad[triu]
            # Budget counts undirected edges, so project the triu vector.
            s_vec = project_budget_box(s_vec, budget.total)
            s = np.zeros((n, n))
            s[triu] = s_vec
            s = s + s.T
        return s

    def _discretize(
        self,
        model: GCN,
        graph: Graph,
        s: np.ndarray,
        budget: AttackBudget,
        labels: np.ndarray,
    ) -> list[EdgeFlip]:
        """Best Bernoulli(S) sample within budget, by frozen-model loss."""
        n = graph.num_nodes
        triu_idx = np.triu_indices(n, k=1)
        probabilities = s[triu_idx]
        best_flips: list[EdgeFlip] = []
        best_loss = -np.inf
        for _ in range(self.samples):
            draw = self._rng.random(len(probabilities)) < probabilities
            if draw.sum() > budget.total:
                chosen = np.flatnonzero(draw)
                keep = self._rng.choice(chosen, size=int(budget.total), replace=False)
                draw = np.zeros_like(draw)
                draw[keep] = True
            flips = [
                EdgeFlip(int(u), int(v))
                for u, v in zip(triu_idx[0][draw], triu_idx[1][draw])
            ]
            if not flips:
                continue
            candidate = apply_perturbations(graph, flips)
            from ..graph import gcn_normalize

            logits = model.forward(gcn_normalize(candidate.adjacency), Tensor(candidate.features))
            loss = float(F.cross_entropy(logits, labels).item())
            if loss > best_loss:
                best_loss, best_flips = loss, flips
        if not best_flips:
            # Deterministic fallback: top-δ entries of S.
            order = np.argsort(-probabilities)[: int(budget.total)]
            best_flips = [
                EdgeFlip(int(triu_idx[0][i]), int(triu_idx[1][i]))
                for i in order
                if probabilities[i] > 0
            ]
        return best_flips

    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        if graph.labels is None or graph.train_mask is None:
            raise ConfigError("PGD is white-box: it requires labels and a train mask")
        model = self._train_victim(graph)
        labels = self._attack_labels(model, graph)
        s = self._ascend(model, graph, budget, labels)
        flips = self._discretize(model, graph, s, budget, labels)
        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        result.edge_flips = flips
        result.poisoned = apply_perturbations(graph, flips)
        return result
