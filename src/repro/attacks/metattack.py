"""Metattack (Zügner & Günnemann, 2019) — gray-box meta-gradient attacker.

Reimplements the Meta-Self variant the paper uses as its strongest baseline:

1. train a surrogate once on the clean graph and *self-label* the unlabelled
   nodes with its predictions;
2. for each perturbation step, differentiate the attacker loss (cross-entropy
   on the self-labelled nodes) **through the inner training run** of a
   linearized two-layer GCN surrogate ``Z = A_n² X W``, whose gradient-descent
   updates are expressed in closed form as tensor operations — this is what
   makes the unrolled chain differentiable w.r.t. the adjacency and yields
   true meta-gradients;
3. greedily flip the entry with the largest meta-gradient score
   ``∇_Â L_atk ⊙ (−2Â + 1)``.

Gray-box access: graph + labels, no victim parameters (Table I row 4).  The
per-flip inner unrolling is what makes Metattack an order of magnitude
slower than PEEGA in Table VII.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..graph import EdgeFlip, FeatureFlip, Graph, apply_perturbations, gcn_normalize_dense
from ..surrogate import linear_propagation
from ..tensor import Tensor, functional as F
from ..utils import cancellation, faults, snapshots
from ..utils.rng import SeedLike, ensure_rng
from .base import AttackBudget, Attacker, AttackResult

__all__ = ["Metattack"]


class Metattack(Attacker):
    """Meta-gradient topology (and optionally feature) attacker.

    Parameters
    ----------
    inner_steps:
        Unrolled gradient-descent steps of the inner surrogate training.
        The default (10) is calibrated so Metattack's relative strength on
        the synthetic datasets matches its strength on the real ones
        (Tables IV–VI); the original uses ~100 epochs, which on the more
        fragile synthetic graphs is disproportionately destructive.
    inner_lr / momentum:
        Inner optimizer settings (vanilla GD with momentum, as in the
        original implementation).
    self_training:
        Use the Meta-Self attacker loss (cross-entropy on self-labelled
        unlabelled nodes); otherwise Meta-Train (labelled nodes only).
    attack_features:
        Also score feature-bit flips with meta-gradients (the original work
        and this paper's experiments use topology only; kept as an option).
    """

    name = "Metattack"
    requires_labels = True

    def __init__(
        self,
        inner_steps: int = 10,
        inner_lr: float = 0.1,
        momentum: float = 0.9,
        self_training: bool = True,
        attack_features: bool = False,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if inner_steps < 1:
            raise ConfigError(f"inner_steps must be >= 1, got {inner_steps}")
        self.inner_steps = int(inner_steps)
        self.inner_lr = float(inner_lr)
        self.momentum = float(momentum)
        self.self_training = bool(self_training)
        self.attack_features = bool(attack_features)

    # ------------------------------------------------------------------
    def _pseudo_labels(self, graph: Graph) -> np.ndarray:
        """Self-training labels: surrogate predictions on unlabelled nodes."""
        assert graph.labels is not None and graph.train_mask is not None
        propagated = linear_propagation(graph.adjacency, graph.features, layers=2)
        weights = _train_linear_classifier(
            np.asarray(propagated), graph.labels, graph.train_mask,
            steps=200, lr=0.1, rng=self._rng,
        )
        predictions = np.argmax(np.asarray(propagated) @ weights, axis=1)
        labels = graph.labels.copy()
        labels[~graph.train_mask] = predictions[~graph.train_mask]
        return labels

    def _meta_gradient(
        self,
        adj_hat: np.ndarray,
        features: np.ndarray,
        labels: np.ndarray,
        train_mask: np.ndarray,
        attack_mask: np.ndarray,
        w_init: np.ndarray,
    ) -> tuple[np.ndarray, Optional[np.ndarray], float]:
        """∇_Â (and optionally ∇_X̂) of the attack loss after inner training."""
        adj_t = Tensor(adj_hat, requires_grad=True)
        feat_t = Tensor(features, requires_grad=self.attack_features)
        normalized = gcn_normalize_dense(adj_t)
        propagated = normalized.matmul(normalized.matmul(feat_t))  # A_n² X

        n_classes = int(labels.max()) + 1
        onehot = np.eye(n_classes)[labels]
        train_rows = np.flatnonzero(train_mask)
        y_train = Tensor(onehot[train_rows])
        scale = 1.0 / float(len(train_rows))

        # Unrolled inner training of Z = (A_n² X) W, vanilla GD + momentum.
        weights = Tensor(w_init)
        velocity: Optional[Tensor] = None
        m_train = propagated[train_rows]
        for _ in range(self.inner_steps):
            logits = m_train.matmul(weights)
            probs = F.softmax(logits, axis=1)
            grad_w = m_train.T.matmul(probs - y_train) * scale
            velocity = grad_w if velocity is None else velocity * self.momentum + grad_w
            weights = weights - self.inner_lr * velocity

        # Attacker loss on the meta-trained weights.
        logits_all = propagated.matmul(weights)
        attack_loss = F.cross_entropy(logits_all, labels, attack_mask)
        attack_loss.backward()

        adj_grad = adj_t.grad if adj_t.grad is not None else np.zeros_like(adj_hat)
        feat_grad = feat_t.grad if self.attack_features else None
        return adj_grad, feat_grad, float(attack_loss.item())

    # ------------------------------------------------------------------
    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        if graph.labels is None or graph.train_mask is None:
            raise ConfigError("Metattack is gray-box: it requires labels and a train mask")

        n, d = graph.num_nodes, graph.num_features
        adj_hat = graph.dense_adjacency()
        feat_hat = graph.features.copy()
        edge_allowed = np.triu(np.ones((n, n), dtype=bool), k=1)
        feat_allowed = np.ones((n, d), dtype=bool)
        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        spent = 0.0
        flip_log: list[tuple[int, int, int]] = []

        # Preemption: the greedy loop itself consumes no RNG, so pseudo
        # labels + the inner weight init + the interleaved flip log are the
        # whole loop state.  Replaying the recorded flips onto the dense
        # buffers reconstructs the interrupted state bit-exactly.
        unit = snapshots.begin_unit(f"attack:{self.name}")
        resumed = unit.resume_state()
        if resumed is not None:
            arrays, meta = resumed
            labels = arrays["labels"]
            w_init = arrays["w_init"]
            flip_log = [
                (int(kind), int(u), int(v))
                for kind, (u, v) in zip(arrays["flip_kinds"], arrays["flip_uv"])
            ]
            for kind, u, v in flip_log:
                if kind == 0:
                    new_value = 0.0 if adj_hat[u, v] else 1.0
                    adj_hat[u, v] = new_value
                    adj_hat[v, u] = new_value
                    edge_allowed[u, v] = False
                    result.edge_flips.append(EdgeFlip(u, v))
                else:
                    feat_hat[u, v] = 1.0 - feat_hat[u, v]
                    feat_allowed[u, v] = False
                    result.feature_flips.append(FeatureFlip(u, v))
            result.objective_trace = [float(x) for x in arrays["objective_trace"]]
            spent = float(meta["spent"])
            snapshots.restore_generator(self._rng, meta["rng"])
        else:
            labels = self._pseudo_labels(graph) if self.self_training else graph.labels
            n_classes = int(labels.max()) + 1
            limit = np.sqrt(6.0 / (d + n_classes))
            w_init = self._rng.uniform(-limit, limit, size=(d, n_classes))
        attack_mask = (
            ~graph.train_mask if self.self_training else graph.train_mask
        )
        min_cost = 1.0 if not self.attack_features else min(1.0, budget.feature_cost)

        def attack_state() -> tuple[dict, dict]:
            return (
                {
                    "flip_kinds": np.asarray(
                        [kind for kind, _, _ in flip_log], dtype=np.int8
                    ),
                    "flip_uv": np.asarray(
                        [(u, v) for _, u, v in flip_log], dtype=np.int64
                    ).reshape(-1, 2),
                    "objective_trace": np.asarray(
                        result.objective_trace, dtype=np.float64
                    ),
                    "labels": np.asarray(labels),
                    "w_init": w_init,
                },
                {
                    "step": len(result.objective_trace),
                    "spent": spent,
                    "rng": snapshots.generator_state(self._rng),
                },
            )

        while spent + min_cost <= budget.total + 1e-12:
            faults.perturb(
                "metattack", attacker=self.name, step=len(result.objective_trace)
            )
            cancellation.checkpoint(
                "metattack",
                unit=unit,
                state=attack_state,
                attacker=self.name,
                step=len(result.objective_trace),
            )
            adj_grad, feat_grad, loss_value = self._meta_gradient(
                adj_hat, feat_hat, labels, graph.train_mask, attack_mask, w_init
            )
            result.objective_trace.append(loss_value)

            grad_sym = adj_grad + adj_grad.T
            score_t = grad_sym * (-2.0 * adj_hat + 1.0)
            score_t = np.where(edge_allowed, score_t, -np.inf)
            best_edge = np.unravel_index(int(np.argmax(score_t)), score_t.shape)
            best_edge_score = score_t[best_edge]

            best_feat_score = -np.inf
            best_feat = (0, 0)
            if feat_grad is not None:
                score_f = feat_grad * (-2.0 * feat_hat + 1.0) / budget.feature_cost
                score_f = np.where(feat_allowed, score_f, -np.inf)
                best_feat = np.unravel_index(int(np.argmax(score_f)), score_f.shape)
                best_feat_score = score_f[best_feat]

            use_feature = (
                feat_grad is not None
                and best_feat_score > best_edge_score
                and spent + budget.feature_cost <= budget.total + 1e-12
            )
            if use_feature:
                u, dim = best_feat
                feat_hat[u, dim] = 1.0 - feat_hat[u, dim]
                feat_allowed[u, dim] = False
                result.feature_flips.append(FeatureFlip(int(u), int(dim)))
                flip_log.append((1, int(u), int(dim)))
                spent += budget.feature_cost
            else:
                if not np.isfinite(best_edge_score) or spent + 1.0 > budget.total + 1e-12:
                    break
                u, v = best_edge
                new_value = 0.0 if adj_hat[u, v] else 1.0
                adj_hat[u, v] = new_value
                adj_hat[v, u] = new_value
                edge_allowed[u, v] = False
                result.edge_flips.append(EdgeFlip(int(u), int(v)))
                flip_log.append((0, int(u), int(v)))
                spent += 1.0

        result.poisoned = apply_perturbations(
            graph, result.edge_flips + result.feature_flips
        )
        return result


def _train_linear_classifier(
    features: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray,
    steps: int,
    lr: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Plain NumPy softmax regression on masked rows (surrogate pretraining)."""
    n_classes = int(labels.max()) + 1
    d = features.shape[1]
    limit = np.sqrt(6.0 / (d + n_classes))
    weights = rng.uniform(-limit, limit, size=(d, n_classes))
    rows = np.flatnonzero(mask)
    x, y = features[rows], np.eye(n_classes)[labels[rows]]
    velocity = np.zeros_like(weights)
    for _ in range(steps):
        logits = x @ weights
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        grad = x.T @ (probs - y) / len(rows)
        velocity = 0.9 * velocity + grad
        weights -= lr * velocity
    return weights
