"""DICE baseline: "Delete Internally, Connect Externally" (Waniek et al. 2018).

A label-aware heuristic attacker — it removes same-label edges and adds
different-label edges.  Included because the paper's Sec. IV-A insight
(attackers blur node context by connecting different labels) makes DICE the
*explicit* version of the pattern PEEGA/Metattack discover implicitly, which
makes it a useful reference point in the Fig 2 edge-difference analysis.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..graph import EdgeFlip, Graph, apply_perturbations
from ..utils.rng import SeedLike
from .base import AttackBudget, Attacker, AttackResult

__all__ = ["DICE"]


class DICE(Attacker):
    """Delete intra-class edges, add inter-class edges, at random.

    Parameters
    ----------
    add_ratio:
        Fraction of the budget spent on additions (the rest on deletions).
    """

    name = "DICE"
    requires_labels = True

    def __init__(self, add_ratio: float = 0.5, seed: SeedLike = None) -> None:
        super().__init__(seed)
        if not 0.0 <= add_ratio <= 1.0:
            raise ConfigError(f"add_ratio must lie in [0, 1], got {add_ratio}")
        self.add_ratio = float(add_ratio)

    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        if graph.labels is None:
            raise ConfigError("DICE requires node labels")
        labels = graph.labels
        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        total = int(budget.total)
        n_add = int(round(total * self.add_ratio))
        n_del = total - n_add

        # Deletions: sample same-label edges.
        edges = graph.edge_list()
        same = edges[labels[edges[:, 0]] == labels[edges[:, 1]]]
        if len(same) and n_del:
            take = self._rng.choice(len(same), size=min(n_del, len(same)), replace=False)
            for u, v in same[take]:
                result.edge_flips.append(EdgeFlip(int(u), int(v)))

        # Additions: sample different-label non-edges.
        n = graph.num_nodes
        seen = {(min(u, v), max(u, v)) for u, v in edges}
        attempts = 0
        while len(result.edge_flips) < n_del + n_add and attempts < 100 * total + 100:
            attempts += 1
            u, v = self._rng.integers(0, n, size=2)
            if u == v or labels[u] == labels[v]:
                continue
            key = (int(min(u, v)), int(max(u, v)))
            if key in seen:
                continue
            seen.add(key)
            result.edge_flips.append(EdgeFlip(*key))

        result.poisoned = apply_perturbations(graph, result.edge_flips)
        return result
