"""MinMax topology attack (Xu et al., 2019) — white-box baseline.

The min-max variant of the PGD attack: instead of freezing the victim's
parameters, it alternates

* one projected-gradient *ascent* step on the edge-perturbation variable S
  (maximizing the training loss), and
* several Adam *descent* steps on the GNN parameters θ (minimizing it),

so the attack anticipates retraining.  Discretization is the same random
sampling as PGD.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..graph import Graph, apply_perturbations, gcn_normalize_dense
from ..nn import GCN
from ..tensor import Adam, Tensor, functional as F
from ..utils.rng import SeedLike
from .base import AttackBudget, AttackResult
from .pgd import PGDAttack, project_budget_box

__all__ = ["MinMaxAttack"]


class MinMaxAttack(PGDAttack):
    """Alternating min-max version of the PGD topology attack."""

    name = "MinMax"

    def __init__(
        self,
        steps: int = 80,
        lr: float = 0.5,
        samples: int = 20,
        inner_steps: int = 3,
        inner_lr: float = 0.01,
        hidden_dim: int = 16,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(steps=steps, lr=lr, samples=samples, hidden_dim=hidden_dim, seed=seed)
        if inner_steps < 1:
            raise ConfigError(f"inner_steps must be >= 1, got {inner_steps}")
        self.inner_steps = int(inner_steps)
        self.inner_lr = float(inner_lr)

    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        if graph.labels is None or graph.train_mask is None:
            raise ConfigError("MinMax is white-box: it requires labels and a train mask")
        model = self._train_victim(graph)
        optimizer = Adam(model.parameters(), lr=self.inner_lr)

        n = graph.num_nodes
        triu = np.triu(np.ones((n, n), dtype=bool), k=1)
        adj = Tensor(graph.dense_adjacency())
        direction = Tensor(1.0 - 2.0 * graph.dense_adjacency())
        features = Tensor(graph.features)
        s = np.zeros((n, n))

        for step in range(self.steps):
            # Max step on S (model frozen).
            model.eval()
            s_tensor = Tensor(s, requires_grad=True)
            perturbed = adj + direction * s_tensor
            logits = model.forward(gcn_normalize_dense(perturbed), features)
            loss = F.cross_entropy(logits, graph.labels, graph.train_mask)
            loss.backward()
            grad = s_tensor.grad if s_tensor.grad is not None else np.zeros_like(s)
            grad = grad + grad.T
            step_size = self.lr / np.sqrt(step + 1.0)
            s_vec = project_budget_box(s[triu] + step_size * grad[triu], budget.total)
            s = np.zeros((n, n))
            s[triu] = s_vec
            s = s + s.T

            # Min steps on θ (S frozen) — the model adapts to the attack.
            model.train()
            frozen = Tensor(s)
            for _ in range(self.inner_steps):
                optimizer.zero_grad()
                perturbed = adj + direction * frozen
                logits = model.forward(gcn_normalize_dense(perturbed), features)
                inner_loss = F.cross_entropy(logits, graph.labels, graph.train_mask)
                inner_loss.backward()
                optimizer.step()

        model.eval()
        labels = self._attack_labels(model, graph)
        flips = self._discretize(model, graph, s, budget, labels)
        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        result.edge_flips = flips
        result.poisoned = apply_perturbations(graph, flips)
        return result
