"""Attacker-node constraints (paper Sec. V-E2, Fig 7a).

Some attack scenarios restrict which nodes the adversary controls ("attacker
nodes" in Table I).  :class:`AttackerNodes` produces candidate masks that
greedy attackers intersect with their score matrices:

* an edge ``(u, v)`` is attackable when at least one endpoint (mode
  ``"any"``) or both endpoints (mode ``"both"``) are accessible;
* feature bits are attackable only on accessible nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..graph import Graph
from ..utils.rng import SeedLike, ensure_rng

__all__ = ["AttackerNodes", "sample_attacker_nodes"]


@dataclass(frozen=True)
class AttackerNodes:
    """Set of nodes the adversary can touch."""

    nodes: np.ndarray  # sorted unique node indices
    mode: str = "any"  # "any": one accessible endpoint suffices; "both": both

    def __post_init__(self) -> None:
        nodes = np.unique(np.asarray(self.nodes, dtype=np.int64))
        object.__setattr__(self, "nodes", nodes)
        if self.mode not in ("any", "both"):
            raise ConfigError(f"mode must be 'any' or 'both', got {self.mode!r}")
        if len(nodes) == 0:
            raise ConfigError("attacker node set must not be empty")

    def node_mask(self, num_nodes: int) -> np.ndarray:
        """Boolean (n,) mask of accessible nodes."""
        mask = np.zeros(num_nodes, dtype=bool)
        mask[self.nodes] = True
        return mask

    def edge_mask(self, num_nodes: int) -> np.ndarray:
        """Boolean (n, n) mask of attackable node pairs (diagonal excluded)."""
        accessible = self.node_mask(num_nodes)
        if self.mode == "any":
            mask = accessible[:, None] | accessible[None, :]
        else:
            mask = accessible[:, None] & accessible[None, :]
        np.fill_diagonal(mask, False)
        return mask

    def feature_mask(self, num_nodes: int, num_features: int) -> np.ndarray:
        """Boolean (n, d) mask of attackable feature bits."""
        accessible = self.node_mask(num_nodes)
        return np.repeat(accessible[:, None], num_features, axis=1)


def sample_attacker_nodes(
    graph: Graph, rate: float, seed: SeedLike = None, mode: str = "any"
) -> AttackerNodes:
    """Sample ``rate`` fraction of nodes uniformly as the accessible set."""
    if not 0.0 < rate <= 1.0:
        raise ConfigError(f"attacker-node rate must lie in (0, 1], got {rate}")
    rng = ensure_rng(seed)
    count = max(1, int(round(rate * graph.num_nodes)))
    nodes = rng.choice(graph.num_nodes, size=count, replace=False)
    return AttackerNodes(nodes=nodes, mode=mode)
