"""Nettack (Zügner et al., KDD 2018) — targeted gray-box attacker.

The remaining row of the paper's Table I: a *targeted* attack that poisons
the neighborhood (and features) of one victim node so a GCN trained on the
poisoned graph misclassifies it.  The paper excludes Nettack from its
untargeted comparison ("designed specifically for targeted attacks",
Sec. V-A2); it is implemented here so the full Table I landscape is
runnable, and exercised by the targeted-attack extension bench.

Mechanism (faithful to the original at this scale):

1. train the linearized surrogate ``Z = A_n² X W`` on the labelled nodes;
2. score every candidate perturbation — edge flips incident to the victim
   (direct attack) or to a set of influencer nodes, and feature flips on
   those nodes — by the victim's resulting *surrogate margin*
   ``Z[v][y_v] − max_{c≠y_v} Z[v][c]`` (recomputed exactly per candidate);
3. apply the margin-minimizing perturbation greedily until the budget is
   spent.

Singleton protection (never strip a node's last feature bit or last edge)
follows the original implementation's unnoticeability constraints.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError
from ..graph import (
    EdgeFlip,
    FeatureFlip,
    Graph,
    apply_perturbations,
    gcn_normalize,
)
from ..utils.rng import SeedLike
from .base import AttackBudget, Attacker, AttackResult
from .metattack import _train_linear_classifier

__all__ = ["Nettack"]


class Nettack(Attacker):
    """Targeted surrogate-margin attacker for a single victim node.

    Parameters
    ----------
    target:
        The victim node index (required before calling :meth:`attack`).
    influencers:
        Number of additional attacker nodes beside the victim whose
        incident edges/features may be perturbed (0 = direct attack only).
    attack_features:
        Also consider feature flips on the attacker nodes.
    """

    name = "Nettack"
    requires_labels = True

    def __init__(
        self,
        target: Optional[int] = None,
        influencers: int = 0,
        attack_features: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if influencers < 0:
            raise ConfigError(f"influencers must be >= 0, got {influencers}")
        self.target = target
        self.influencers = int(influencers)
        self.attack_features = bool(attack_features)

    # ------------------------------------------------------------------
    def surrogate_margin(self, graph: Graph, weights: np.ndarray, node: int) -> float:
        """Victim's classification margin under the linear surrogate."""
        normalized = gcn_normalize(graph.adjacency)
        row = normalized[node] @ normalized  # (1, n) second-hop row of v
        logits = (row @ graph.features) @ weights
        logits = np.asarray(logits).ravel()
        true_class = int(graph.labels[node])
        others = np.delete(logits, true_class)
        return float(logits[true_class] - others.max())

    def _attacker_nodes(self, graph: Graph, target: int) -> list[int]:
        nodes = [target]
        if self.influencers > 0:
            neighbors = list(graph.neighbors(target))
            self._rng.shuffle(neighbors)
            nodes.extend(int(u) for u in neighbors[: self.influencers])
        return nodes

    def _candidates(
        self, graph: Graph, nodes: list[int], banned: set
    ) -> list[EdgeFlip | FeatureFlip]:
        n = graph.num_nodes
        degrees = graph.degrees()
        feature_rows = graph.features.sum(axis=1)
        out: list[EdgeFlip | FeatureFlip] = []
        for u in nodes:
            for v in range(n):
                if v == u:
                    continue
                key = ("e", min(u, v), max(u, v))
                if key in banned:
                    continue
                # Unnoticeability: never disconnect a node entirely.
                if graph.has_edge(u, v) and (degrees[u] <= 1 or degrees[v] <= 1):
                    continue
                out.append(EdgeFlip(int(min(u, v)), int(max(u, v))))
            if self.attack_features:
                for dim in range(graph.num_features):
                    key = ("f", u, dim)
                    if key in banned:
                        continue
                    deleting = graph.features[u, dim] == 1.0
                    if deleting and feature_rows[u] <= 1:
                        continue
                    out.append(FeatureFlip(int(u), int(dim)))
        return out

    # ------------------------------------------------------------------
    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        if self.target is None:
            raise ConfigError("Nettack needs a target node (set `target`)")
        if graph.labels is None or graph.train_mask is None:
            raise ConfigError("Nettack is gray-box: it requires labels and a train mask")
        if not 0 <= self.target < graph.num_nodes:
            raise ConfigError(f"target {self.target} out of range")

        # Surrogate training (gray-box: labels of the train split only).
        normalized = gcn_normalize(graph.adjacency)
        propagated = normalized @ (normalized @ graph.features)
        weights = _train_linear_classifier(
            propagated, graph.labels, graph.train_mask, steps=200, lr=0.1, rng=self._rng
        )

        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        current = graph
        banned: set = set()
        spent = 0.0
        nodes = self._attacker_nodes(graph, self.target)

        while spent + 1.0 <= budget.total + 1e-12:
            candidates = self._candidates(current, nodes, banned)
            if not candidates:
                break
            best_margin = np.inf
            best: Optional[EdgeFlip | FeatureFlip] = None

            # Feature flips leave the adjacency untouched, so their margins
            # follow in closed form from the victim's (fixed) 2-hop row:
            # Δlogits = ±row[u] · W[dim].  Edge flips change the
            # normalization and are re-evaluated exactly.
            normalized_now = gcn_normalize(current.adjacency)
            row = np.asarray(
                (normalized_now[self.target] @ normalized_now).todense()
            ).ravel()
            base_logits = (row @ current.features) @ weights
            true_class = int(graph.labels[self.target])

            def margin_of(logits: np.ndarray) -> float:
                others = np.delete(logits, true_class)
                return float(logits[true_class] - others.max())

            for candidate in candidates:
                if isinstance(candidate, FeatureFlip):
                    direction = 1.0 - 2.0 * current.features[candidate.node, candidate.dim]
                    delta = direction * row[candidate.node] * weights[candidate.dim]
                    margin = margin_of(base_logits + delta)
                else:
                    trial = apply_perturbations(current, [candidate])
                    margin = self.surrogate_margin(trial, weights, self.target)
                if margin < best_margin:
                    best_margin = margin
                    best = candidate
            assert best is not None
            cost = budget.cost_of(best)
            if spent + cost > budget.total + 1e-12:
                break
            current = apply_perturbations(current, [best])
            if isinstance(best, EdgeFlip):
                banned.add(("e", best.u, best.v))
                result.edge_flips.append(best)
            else:
                banned.add(("f", best.node, best.dim))
                result.feature_flips.append(best)
            result.objective_trace.append(-best_margin)  # higher = worse margin
            spent += cost

        result.poisoned = current
        return result
