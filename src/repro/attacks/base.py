"""Attacker framework: budgets, results, and the :class:`Attacker` interface.

Budget semantics follow the paper (Def. 1/3): a perturbation rate ``r``
yields a budget ``δ = round(r · ||A||_0)`` where ``||A||_0`` is the number of
*undirected* edges; each edge toggle costs 1 unit and each feature-bit toggle
costs ``β`` units (β=1 unless the Fig 5b cost study overrides it).
"""

from __future__ import annotations

import abc
import time
import warnings
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import BudgetError, BudgetWarning
from ..graph import (
    EdgeFlip,
    FeatureFlip,
    Graph,
    feature_distance,
    structural_distance,
    validate_graph,
)
from ..utils.rng import SeedLike, ensure_rng

__all__ = [
    "AttackBudget",
    "AttackResult",
    "Attacker",
    "resolve_budget",
    "feasible_budget_ceiling",
]


def feasible_budget_ceiling(graph: Graph, feature_cost: float = 1.0) -> float:
    """The most budget an attack on ``graph`` could conceivably spend.

    Every undirected edge slot can be toggled at most once
    (``n(n-1)/2`` units) and every feature bit at most once
    (``feature_cost · n · d`` units).  Budgets above this ceiling cannot be
    spent and usually signal a mis-set perturbation rate.
    """
    n = graph.num_nodes
    d = graph.features.shape[1] if graph.features.ndim == 2 else 0
    return n * (n - 1) / 2.0 + float(feature_cost) * n * d


@dataclass(frozen=True)
class AttackBudget:
    """Modification budget ``δ`` with the feature-cost weight ``β``."""

    total: float
    feature_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.total < 0:
            raise BudgetError(f"budget must be non-negative, got {self.total}")
        if self.feature_cost <= 0:
            raise BudgetError(f"feature cost must be positive, got {self.feature_cost}")

    def cost_of(self, perturbation: EdgeFlip | FeatureFlip) -> float:
        """Cost in budget units of one perturbation."""
        return self.feature_cost if isinstance(perturbation, FeatureFlip) else 1.0


def resolve_budget(
    graph: Graph,
    budget: Optional[AttackBudget] = None,
    perturbation_rate: Optional[float] = None,
    feature_cost: float = 1.0,
) -> AttackBudget:
    """Build an :class:`AttackBudget` from either an explicit budget or a rate."""
    if budget is not None and perturbation_rate is not None:
        raise BudgetError("give either a budget or a perturbation_rate, not both")
    if budget is not None:
        return budget
    if perturbation_rate is None:
        raise BudgetError("an attack needs a budget or a perturbation_rate")
    if perturbation_rate < 0:
        raise BudgetError(f"perturbation rate must be non-negative, got {perturbation_rate}")
    return AttackBudget(
        total=float(round(perturbation_rate * graph.num_edges)),
        feature_cost=feature_cost,
    )


@dataclass
class AttackResult:
    """Everything an attack run produced.

    Attributes
    ----------
    original / poisoned:
        Clean and poisoned graphs (labels/masks carried over unchanged —
        attackers never see them, they are kept for downstream evaluation).
    edge_flips / feature_flips:
        The applied perturbations in selection order.
    budget:
        The budget the attack ran under.
    objective_trace:
        Attack-objective value after each greedy step (when applicable).
    runtime_seconds:
        Wall-clock time of the attack.
    """

    original: Graph
    poisoned: Graph
    budget: AttackBudget
    edge_flips: list[EdgeFlip] = field(default_factory=list)
    feature_flips: list[FeatureFlip] = field(default_factory=list)
    objective_trace: list[float] = field(default_factory=list)
    runtime_seconds: float = 0.0

    @property
    def num_perturbations(self) -> int:
        return len(self.edge_flips) + len(self.feature_flips)

    @property
    def spent(self) -> float:
        """Budget units consumed."""
        return len(self.edge_flips) + self.budget.feature_cost * len(self.feature_flips)

    def verify_budget(self) -> None:
        """Assert the poisoned graph respects the L0 budget (Def. 3's constraint)."""
        structural = structural_distance(self.original.adjacency, self.poisoned.adjacency)
        features = feature_distance(self.original.features, self.poisoned.features)
        spent = structural + self.budget.feature_cost * features
        if spent > self.budget.total + 1e-9:
            raise BudgetError(
                f"attack exceeded budget: spent {spent}, allowed {self.budget.total}"
            )


class Attacker(abc.ABC):
    """Interface all attackers implement.

    Subclasses state their access level via the ``requires_*`` class flags,
    mirroring the paper's Table I columns; the experiment runner uses these
    to document what each attacker consumed.
    """

    name: str = "attacker"
    requires_labels: bool = False
    requires_model: bool = False
    requires_predictions: bool = False

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = ensure_rng(seed)

    @abc.abstractmethod
    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        """Produce the attack; implemented by subclasses."""

    def attack(
        self,
        graph: Graph,
        budget: Optional[AttackBudget] = None,
        perturbation_rate: Optional[float] = None,
        validate: str = "strict",
    ) -> AttackResult:
        """Attack ``graph`` under a budget, timing the run and verifying cost.

        The input graph passes contract validation under ``validate``
        (``strict``/``repair``/``off``) before the attack sees it, and a
        budget exceeding the graph's feasible flip ceiling is clamped with
        a :class:`~repro.errors.BudgetWarning` rather than sending the
        attacker chasing spend it can never realize.
        """
        graph = validate_graph(
            graph, policy=validate, context=f"{self.name} attack input"
        )
        resolved = resolve_budget(graph, budget, perturbation_rate)
        ceiling = feasible_budget_ceiling(graph, resolved.feature_cost)
        if resolved.total > ceiling:
            warnings.warn(
                f"{self.name}: budget {resolved.total:g} exceeds the feasible "
                f"flip ceiling {ceiling:g} for this graph "
                f"({graph.num_nodes} nodes); clamping",
                BudgetWarning,
                stacklevel=2,
            )
            resolved = AttackBudget(total=ceiling, feature_cost=resolved.feature_cost)
        start = time.perf_counter()
        result = self._run(graph, resolved)
        result.runtime_seconds = time.perf_counter() - start
        result.verify_budget()
        return result
