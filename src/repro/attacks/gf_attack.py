"""GF-Attack (Chang et al., 2020) — restricted black-box spectral attacker.

GF-Attack perturbs the *graph filter* of the victim's embedding module
rather than any classification loss.  For a K-layer linear GNN (SGC-style)
the embedding quality is governed by the spectrum of the self-looped
normalized adjacency; GF-Attack scores a candidate flip by the resulting
change in

    L_GF(Â) = Σ_{i ∈ T}  λ'_i^{2K} · (u_iᵀ x̄)²

where ``λ_i, u_i`` are eigenpairs of ``A_n``, ``x̄`` is the feature row-sum
vector, and T selects the ``top_t`` smallest-magnitude eigenvalues (the ones
a K-power filter suppresses — inflating them corrupts the filter).

The ICDE paper extends the (originally targeted) attack to the untargeted
setting by scoring all candidates and selecting greedily; it also observes
that GF-Attack is the *slowest* attacker (Table VII) because each candidate
evaluation involves a spectral decomposition.  This implementation keeps
that faithful cost: candidates are pre-filtered with first-order eigenvalue
perturbation theory, and the ``exact_candidates`` best of them are then
re-evaluated with a full eigendecomposition of the flipped graph.

Black-box access: topology and features only — but note it cannot perturb
features, and in the untargeted setting it only mildly degrades accuracy
(Tables IV–VI), both faithfully reproduced here.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..graph import EdgeFlip, Graph, apply_perturbations, gcn_normalize
from ..utils.rng import SeedLike
from .base import AttackBudget, Attacker, AttackResult

__all__ = ["GFAttack"]


class GFAttack(Attacker):
    """Spectral graph-filter attacker (untargeted extension).

    Parameters
    ----------
    k_power:
        Filter order K of the surrogate embedding (2 = SGC default).
    top_t_fraction:
        Fraction of the spectrum (smallest |λ| first) entering the loss.
    candidate_pool:
        Number of random candidate pairs scored per step (plus existing
        edges' deletions are always considered).
    exact_candidates:
        How many top perturbation-theory candidates get exact spectral
        re-evaluation each step.  This is the deliberate O(n³)-per-candidate
        cost centre reproducing Table VII's ordering.
    """

    name = "GF-Attack"

    def __init__(
        self,
        k_power: int = 2,
        top_t_fraction: float = 0.5,
        candidate_pool: int = 2000,
        exact_candidates: int = 8,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if k_power < 1:
            raise ConfigError(f"k_power must be >= 1, got {k_power}")
        if not 0.0 < top_t_fraction <= 1.0:
            raise ConfigError(f"top_t_fraction must lie in (0, 1], got {top_t_fraction}")
        self.k_power = int(k_power)
        self.top_t_fraction = float(top_t_fraction)
        self.candidate_pool = int(candidate_pool)
        self.exact_candidates = int(exact_candidates)

    # ------------------------------------------------------------------
    def _filter_loss(self, adjacency, x_bar: np.ndarray) -> float:
        """Exact L_GF via eigendecomposition of the normalized adjacency."""
        normalized = gcn_normalize(adjacency).toarray()
        eigenvalues, eigenvectors = np.linalg.eigh(normalized)
        return self._loss_from_spectrum(eigenvalues, eigenvectors, x_bar)

    def _loss_from_spectrum(
        self, eigenvalues: np.ndarray, eigenvectors: np.ndarray, x_bar: np.ndarray
    ) -> float:
        t = max(1, int(round(len(eigenvalues) * self.top_t_fraction)))
        order = np.argsort(np.abs(eigenvalues))[:t]
        projections = eigenvectors[:, order].T @ x_bar
        return float(
            np.sum(np.abs(eigenvalues[order]) ** (2 * self.k_power) * projections**2)
        )

    def _perturbation_scores(
        self,
        eigenvalues: np.ndarray,
        eigenvectors: np.ndarray,
        x_bar: np.ndarray,
        candidates: np.ndarray,
        adjacency_dense: np.ndarray,
    ) -> np.ndarray:
        """First-order Δλ estimate of the filter loss change per candidate."""
        t = max(1, int(round(len(eigenvalues) * self.top_t_fraction)))
        order = np.argsort(np.abs(eigenvalues))[:t]
        lams = eigenvalues[order]  # (t,)
        vecs = eigenvectors[:, order]  # (n, t)
        projections = (vecs.T @ x_bar) ** 2  # (t,)

        u, v = candidates[:, 0], candidates[:, 1]
        # First-order shift of each eigenvalue of A_n under one edge flip,
        # Δλ_k = v_kᵀ E v_k with E = Δ(A_n) decomposed into
        #   (a) the direct ±1/√(d̃_u d̃_v) entries at (u,v)/(v,u), and
        #   (b) the rescaling of rows/cols u and v by −Δa/(2 d̃) — which via
        #       the eigen-relation Σ_i A_n[u,i] v_k[i] = λ_k v_k[u] collapses
        #       to −λ_k Δa (v_k[u]²/d̃_u + v_k[v]²/d̃_v).
        degrees = adjacency_dense.sum(axis=1) + 1.0  # self-looped degrees
        raw_delta = 1.0 - 2.0 * adjacency_dense[u, v]  # +1 add, −1 delete
        direct = (raw_delta / np.sqrt(degrees[u] * degrees[v]))[:, None] * (
            2.0 * vecs[u] * vecs[v]
        )
        rescale = -lams[None, :] * raw_delta[:, None] * (
            vecs[u] ** 2 / degrees[u][:, None] + vecs[v] ** 2 / degrees[v][:, None]
        )
        shift = direct + rescale
        new_lams = lams[None, :] + shift  # (c, t)
        new_loss = np.sum(np.abs(new_lams) ** (2 * self.k_power) * projections[None, :], axis=1)
        base_loss = np.sum(np.abs(lams) ** (2 * self.k_power) * projections)
        return new_loss - base_loss

    def _sample_candidates(self, graph: Graph, banned: set[tuple[int, int]]) -> np.ndarray:
        n = graph.num_nodes
        pairs: set[tuple[int, int]] = set()
        # Always consider deleting existing edges.
        for u, v in graph.edge_list():
            key = (int(u), int(v))
            if key not in banned:
                pairs.add(key)
        attempts = 0
        while len(pairs) < self.candidate_pool and attempts < 20 * self.candidate_pool:
            attempts += 1
            u, v = self._rng.integers(0, n, size=2)
            if u == v:
                continue
            key = (int(min(u, v)), int(max(u, v)))
            if key not in banned:
                pairs.add(key)
        return np.array(sorted(pairs), dtype=np.int64)

    # ------------------------------------------------------------------
    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        x_bar = graph.features.sum(axis=1)
        if np.allclose(x_bar, x_bar[0]):
            # Identity features (Polblogs): fall back to degree profile so the
            # projections are not all identical.
            x_bar = graph.degrees() + 1.0

        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        current = graph
        banned: set[tuple[int, int]] = set()
        spent = 0

        while spent + 1 <= budget.total:
            adjacency_dense = current.dense_adjacency()
            normalized = gcn_normalize(current.adjacency).toarray()
            eigenvalues, eigenvectors = np.linalg.eigh(normalized)
            candidates = self._sample_candidates(current, banned)
            if len(candidates) == 0:
                break
            scores = self._perturbation_scores(
                eigenvalues, eigenvectors, x_bar, candidates, adjacency_dense
            )
            top = np.argsort(-scores)[: self.exact_candidates]

            best_flip = None
            best_loss = -np.inf
            for index in top:
                u, v = int(candidates[index, 0]), int(candidates[index, 1])
                trial = apply_perturbations(current, [EdgeFlip(u, v)])
                loss = self._filter_loss(trial.adjacency, x_bar)
                if loss > best_loss:
                    best_loss = loss
                    best_flip = EdgeFlip(u, v)
            if best_flip is None:
                break

            banned.add((min(best_flip.u, best_flip.v), max(best_flip.u, best_flip.v)))
            result.edge_flips.append(best_flip)
            result.objective_trace.append(best_loss)
            current = apply_perturbations(current, [best_flip])
            spent += 1

        result.poisoned = current
        return result
