"""Extension bench — targeted attacks with Nettack (Table I's remaining row).

The paper's untargeted comparison excludes Nettack ("designed specifically
for targeted attacks", Sec. V-A2).  This bench runs the classic targeted
protocol instead: sample correctly-classified test victims, attack each
with budget Δ·deg(v), retrain a GCN on the poisoned graph, and report the
misclassification (success) rate per budget multiplier.
"""

import numpy as np

from _util import emit, run_once

from repro.attacks import AttackBudget, Nettack
from repro.experiments import ExperimentRunner, format_series
from repro.graph import gcn_normalize
from repro.nn import GCN, TrainConfig, train_node_classifier
from repro.tensor import Tensor

BUDGET_MULTIPLIERS = [0.5, 1.0, 2.0]
NUM_VICTIMS = 8


def test_ext_targeted_nettack(benchmark):
    runner = ExperimentRunner()

    def run():
        graph = runner.graph("cora")
        model = GCN(graph.num_features, graph.num_classes, seed=0)
        train_node_classifier(model, graph, TrainConfig())
        predictions = model.predict(gcn_normalize(graph.adjacency), Tensor(graph.features))
        eligible = np.flatnonzero(
            (predictions == graph.labels) & graph.test_mask & (graph.degrees() >= 2)
        )
        rng = np.random.default_rng(0)
        victims = rng.choice(eligible, size=min(NUM_VICTIMS, len(eligible)), replace=False)

        rates = []
        for multiplier in BUDGET_MULTIPLIERS:
            successes = 0
            for victim in victims:
                budget = AttackBudget(
                    total=max(1.0, float(round(multiplier * graph.degrees()[victim])))
                )
                result = Nettack(target=int(victim), seed=0).attack(graph, budget=budget)
                retrained = GCN(graph.num_features, graph.num_classes, seed=1)
                train_node_classifier(retrained, result.poisoned, TrainConfig())
                prediction = retrained.predict(
                    gcn_normalize(result.poisoned.adjacency),
                    Tensor(result.poisoned.features),
                )
                successes += int(prediction[victim] != graph.labels[victim])
            rates.append(successes / len(victims))
        return rates

    rates = run_once(benchmark, run)
    text = format_series(
        "budget×deg",
        BUDGET_MULTIPLIERS,
        {"success rate": rates},
        title=(
            "Extension — Nettack targeted misclassification rate vs budget "
            f"({NUM_VICTIMS} victims, Cora)"
        ),
    )
    emit("ext_targeted_nettack", text)
    # More budget ⇒ at least as many victims fall.
    assert rates[-1] >= rates[0], rates
    assert rates[-1] > 0.0, rates
