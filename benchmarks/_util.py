"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables/figures and *emits* the
formatted rows: printed to stdout (visible with ``pytest -s``) and saved
under ``benchmarks/results/`` so ``EXPERIMENTS.md`` can reference them.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print ``text`` and persist it to ``benchmarks/results/<name>.txt``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiment grids are far too heavy for statistical repetition; one
    timed round still records the wall-clock in the benchmark table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
