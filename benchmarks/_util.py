"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables/figures and *emits* the
formatted rows: printed to stdout (visible with ``pytest -s``) and saved
under ``benchmarks/results/`` so ``EXPERIMENTS.md`` can reference them.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print ``text`` and persist it to ``benchmarks/results/<name>.txt``."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> None:
    """Persist a machine-read ``BENCH_*.json`` report atomically + durably.

    CI gates parse these files, so a mid-write kill must leave the previous
    report or nothing — and a full disk must fail with a structured
    :class:`~repro.errors.ResourceError` naming the path, not a torn file.
    """
    from repro.io import atomic_write_json
    from repro.utils.resources import require_free_disk

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    needed = len(json.dumps(payload, indent=2, sort_keys=True).encode()) + 4096
    require_free_disk(path, needed, site="bench_disk", report=name)
    atomic_write_json(path, payload)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiment grids are far too heavy for statistical repetition; one
    timed round still records the wall-clock in the benchmark table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
