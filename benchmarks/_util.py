"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables/figures and *emits* the
formatted rows: printed to stdout (visible with ``pytest -s``) and saved
under ``benchmarks/results/`` so ``EXPERIMENTS.md`` can reference them.

Machine-read reports (``BENCH_*.json``) all share one envelope — the
``repro.bench/1`` schema: ``{"schema": "repro.bench/1", "bench": <name>,
...payload}`` — so ``perf_gate.py`` and the CI gates can parse any report
the same way and diff fresh numbers against committed baselines.  Every
write (text or JSON) is disk-preflighted, atomic, and fsync-durable: a CI
kill mid-write leaves the previous report or nothing, never a torn file.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The one schema tag shared by every BENCH_*.json report.
BENCH_SCHEMA = "repro.bench/1"


def emit(name: str, text: str) -> None:
    """Print ``text`` and persist it to ``benchmarks/results/<name>.txt``."""
    from repro.io import atomic_write_text
    from repro.utils.resources import require_free_disk

    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    require_free_disk(path, len(text.encode()) + 4096, site="bench_disk", report=name)
    atomic_write_text(path, text + "\n")


def emit_json(name: str, payload: dict) -> None:
    """Persist a machine-read ``BENCH_*.json`` report atomically + durably.

    Wraps ``payload`` in the unified ``repro.bench/1`` envelope: a
    ``schema`` tag plus the bench name derived from the file name
    (``BENCH_training.json`` → ``"training"``).  CI gates parse these
    files, so a mid-write kill must leave the previous report or nothing —
    and a full disk must fail with a structured
    :class:`~repro.errors.ResourceError` naming the path, not a torn file.
    """
    from repro.io import atomic_write_json
    from repro.utils.resources import require_free_disk

    stem = name
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    record = {"schema": BENCH_SCHEMA, "bench": stem}
    record.update(payload)

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    needed = len(json.dumps(record, indent=2, sort_keys=True).encode()) + 4096
    require_free_disk(path, needed, site="bench_disk", report=name)
    atomic_write_json(path, record)


def cell_stats(cell) -> dict | None:
    """JSON-ready ``{"mean", "std"}`` for a sweep cell (``None`` stays None)."""
    if cell is None:
        return None
    return {"mean": cell.mean, "std": cell.std}


def table_stats(rows: dict) -> dict:
    """JSON-ready nested mapping for an accuracy/timing table's cells."""
    return {
        row: {col: cell_stats(cell) for col, cell in cols.items()}
        for row, cols in rows.items()
    }


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiment grids are far too heavy for statistical repetition; one
    timed round still records the wall-clock in the benchmark table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
