"""Extension bench — the wider defense landscape on PEEGA poison.

Adds the defenses this repo implements beyond the paper's Table IV columns
— GNNGuard (the attention-pruning family of the paper's related work) and
DropEdge (stochastic topology training, cited [67]) — next to raw GCN and
GNAT, on PEEGA-poisoned Cora.
"""

from _util import emit, run_once

from repro.defenses import DropEdgeGCN, GNNGuard
from repro.experiments import ExperimentRunner, format_series


def test_ext_defense_zoo(benchmark):
    runner = ExperimentRunner()

    def run():
        poisoned = runner.attack("cora", "PEEGA").poisoned
        scores = {}
        scores["GCN"] = runner.evaluate_defender(poisoned, "cora", "GCN").mean
        scores["GNNGuard"] = runner.evaluate_defender(
            poisoned, "cora", "GNNGuard",
            defender_factory=lambda seed: GNNGuard(seed=seed),
        ).mean
        scores["DropEdge"] = runner.evaluate_defender(
            poisoned, "cora", "DropEdge",
            defender_factory=lambda seed: DropEdgeGCN(seed=seed),
        ).mean
        scores["GNAT"] = runner.evaluate_defender(poisoned, "cora", "GNAT").mean
        return scores

    scores = run_once(benchmark, run)
    text = format_series(
        "defense",
        list(scores.keys()),
        {"accuracy": list(scores.values())},
        title="Extension — wider defense landscape on PEEGA-poisoned Cora (r=0.1)",
    )
    emit("ext_defense_zoo", text)
    # The attention/stochastic families give modest robustness; GNAT leads.
    assert scores["GNAT"] >= max(scores.values()) - 0.02, scores
    assert scores["GNNGuard"] >= scores["GCN"] - 0.03, scores
