"""Fig 7(b) — PEEGA surrogate depth l (A_n^l X) vs GCN victim depth.

Paper shape: PEEGA_2 is the strongest variant (2-hop context is what the
victim GCN itself uses); PEEGA_1 is clearly weaker; deeper surrogates
(3, 4) stay competitive.
"""

from _util import emit, emit_json, run_once

from repro.core import PEEGA
from repro.experiments import ExperimentRunner, format_series
from repro.nn import GCN, TrainConfig, train_node_classifier

SURROGATE_LAYERS = [1, 2, 3, 4]
VICTIM_LAYERS = [2, 3]


def test_fig7b_layers(benchmark):
    runner = ExperimentRunner()

    def run():
        graph = runner.graph("cora")
        series: dict[str, list[float]] = {}
        for victim_depth in VICTIM_LAYERS:
            def eval_gcn(g, depth=victim_depth):
                values = []
                for seed in range(runner.config.seeds):
                    model = GCN(
                        g.num_features, g.num_classes, num_layers=depth, seed=seed
                    )
                    values.append(
                        train_node_classifier(model, g, TrainConfig()).test_accuracy
                    )
                return sum(values) / len(values)

            row = []
            for layers in SURROGATE_LAYERS:
                attacker = PEEGA(layers=layers, seed=0)
                poisoned = attacker.attack(
                    graph, perturbation_rate=runner.config.rate
                ).poisoned
                row.append(eval_gcn(poisoned))
            series[f"GCN-{victim_depth}L"] = row
        return series

    series = run_once(benchmark, run)
    text = format_series(
        "PEEGA_l",
        SURROGATE_LAYERS,
        series,
        title="Fig 7(b) — GCN accuracy vs PEEGA surrogate depth (Cora, r=0.1)",
    )
    emit("fig7b_layers", text)
    emit_json(
        "BENCH_fig7b_layers.json",
        {"dataset": "cora", "surrogate_layers": SURROGATE_LAYERS, "series": series},
    )
    # PEEGA_2 attacks the 2-layer victim at least as well as PEEGA_1.
    assert series["GCN-2L"][1] <= series["GCN-2L"][0] + 0.02, series
