"""Fig 1 — proportion of edges whose endpoints share a label.

Paper: all evaluated datasets exceed 70.43% same-label edges, which is the
homophily property PEEGA's global view (Dif2) substitutes for labels.
"""

from _util import emit, emit_json, run_once

from repro.analysis import edge_homophily
from repro.datasets import dataset_names, load_dataset
from repro.experiments import ExperimentScale, format_series


def test_fig1_homophily(benchmark):
    config = ExperimentScale.from_env()

    def run():
        values = {}
        for name in dataset_names():
            graph = load_dataset(name, scale=config.scale, seed=0)
            values[name] = edge_homophily(graph)
        return values

    values = run_once(benchmark, run)
    text = format_series(
        "dataset",
        list(values.keys()),
        {"same-label edge %": list(values.values())},
        title="Fig 1 — edge homophily per dataset (paper: all > 70.43%)",
    )
    emit("fig1_homophily", text)
    emit_json(
        "BENCH_fig1_homophily.json",
        {"scale": config.scale, "same_label_edge_fraction": values},
    )
    assert all(v > 0.70 for v in values.values()), values
