"""Fig 8 — PEEGA hyper-parameter sensitivity: λ (a) and the norm p (b).

Paper shape: (a) as λ grows, GCN accuracy on the poison graph first falls
(the global view adds attack power) and then rises (overvalued neighbors);
(b) the best p is dataset-dependent (2 for citation graphs, 1 for Polblogs
in the paper; the synthetic stand-ins favour p=1 on Cora as documented in
EXPERIMENTS.md).
"""

from _util import emit, emit_json, run_once

from repro.core import PEEGA
from repro.experiments import ExperimentRunner, format_series

LAMBDAS = [0.0, 0.005, 0.01, 0.02, 0.05, 0.1]
NORMS = [1, 2, 3]


def test_fig8a_lambda(benchmark):
    runner = ExperimentRunner()

    def run():
        graph = runner.graph("cora")
        accs = []
        for lam in LAMBDAS:
            poisoned = PEEGA(lam=lam, seed=0).attack(
                graph, perturbation_rate=runner.config.rate
            ).poisoned
            accs.append(runner.evaluate_defender(poisoned, "cora", "GCN").mean)
        return accs

    accs = run_once(benchmark, run)
    emit(
        "fig8a_lambda",
        format_series(
            "lambda",
            LAMBDAS,
            {"GCN accuracy": accs},
            title="Fig 8(a) — GCN accuracy vs PEEGA λ (Cora, r=0.1)",
        ),
    )
    emit_json(
        "BENCH_fig8a_lambda.json",
        {"dataset": "cora", "lambdas": LAMBDAS, "gcn_accuracy": accs},
    )
    # Some positive λ is at least as strong as λ=0 (the global view helps).
    assert min(accs[1:]) <= accs[0] + 0.02, accs


def test_fig8b_norm(benchmark):
    runner = ExperimentRunner()

    def run():
        results = {}
        for dataset in ("cora", "polblogs"):
            graph = runner.graph(dataset)
            attack_features = dataset != "polblogs"
            row = []
            for p in NORMS:
                poisoned = PEEGA(
                    p=p, attack_features=attack_features, seed=0
                ).attack(graph, perturbation_rate=runner.config.rate).poisoned
                row.append(runner.evaluate_defender(poisoned, dataset, "GCN").mean)
            results[dataset] = row
        return results

    results = run_once(benchmark, run)
    emit(
        "fig8b_norm",
        format_series(
            "p",
            NORMS,
            results,
            title="Fig 8(b) — GCN accuracy vs PEEGA norm p (r=0.1)",
        ),
    )
    emit_json(
        "BENCH_fig8b_norm.json",
        {"norms": NORMS, "gcn_accuracy": results},
    )
    # p=1 is the strongest norm on Polblogs (paper's finding).
    assert results["polblogs"][0] == min(results["polblogs"]), results
