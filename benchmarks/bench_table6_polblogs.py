"""Table VI — node classification accuracy on Polblogs under 0.1 perturbation.

Polblogs has identity node features, so GCN-Jaccard and GNAT's feature view
are not applicable (the paper's footnote); GNAT runs as GNAT\\f with the
topology and ego views only.

Paper shape: PEEGA is by far the strongest attacker on Polblogs (it exploits
the single critical identity feature per node / fragile leaf blogs), and the
defenders recover part of the damage.
"""

from _util import emit, emit_json, run_once, table_stats

from repro.experiments import ExperimentRunner, format_accuracy_table


def test_table6_polblogs(benchmark):
    runner = ExperimentRunner()
    table = run_once(benchmark, lambda: runner.accuracy_table("polblogs"))
    emit(
        "table6_polblogs",
        format_accuracy_table(
            table, title="Table VI — Polblogs, r=0.1 (accuracy %), GNAT = GNAT\\f"
        ),
    )
    emit_json(
        "BENCH_table6_polblogs.json",
        {"dataset": table.dataset, "rate": table.rate, "rows": table_stats(table.rows)},
    )

    gcn = {name: row["GCN"].mean for name, row in table.rows.items()}
    assert "GCN-Jaccard" not in table.rows["Clean"], "Jaccard must be excluded"
    assert gcn["PEEGA"] < gcn["Clean"], gcn
    # PEEGA is the strongest attacker against raw GCN on Polblogs.
    attacked = {k: v for k, v in gcn.items() if k != "Clean"}
    assert min(attacked, key=attacked.get) == "PEEGA", attacked
