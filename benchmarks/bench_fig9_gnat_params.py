"""Fig 9 — GNAT augmentation-strength sensitivity on Citeseer: k_t, k_f, k_e.

Paper shape: each parameter has a sweet spot — accuracy first rises
(augmented same-label edges make contexts distinguishable) then falls
(too-aggressive augmentation introduces noise / drowns out the local
structure).  Defaults {k_t, k_f, k_e} = {2, 15, 10}.
"""

from _util import emit, emit_json, run_once

from repro.core import GNAT
from repro.experiments import ExperimentRunner, format_series

K_T = [1, 2, 3]
K_F = [5, 10, 15, 20]
K_E = [1, 5, 10, 20]


def test_fig9_gnat_parameters(benchmark):
    runner = ExperimentRunner()

    def run():
        poisoned = runner.attack("citeseer", "PEEGA").poisoned

        def score(**kwargs) -> float:
            cell = runner.evaluate_defender(
                poisoned,
                "citeseer",
                "GNAT",
                defender_factory=lambda seed: GNAT(seed=seed, **kwargs),
            )
            return cell.mean

        return {
            "k_t": [score(views="t", k_t=k) for k in K_T],
            "k_f": [score(views="f", k_f=k) for k in K_F],
            "k_e": [score(views="e", k_e=k) for k in K_E],
        }

    rows = run_once(benchmark, run)
    blocks = [
        format_series("k_t", K_T, {"GNAT-t": rows["k_t"]},
                      title="Fig 9 — GNAT-t accuracy vs k_t (Citeseer, PEEGA r=0.1)"),
        format_series("k_f", K_F, {"GNAT-f": rows["k_f"]},
                      title="Fig 9 — GNAT-f accuracy vs k_f"),
        format_series("k_e", K_E, {"GNAT-e": rows["k_e"]},
                      title="Fig 9 — GNAT-e accuracy vs k_e"),
    ]
    emit("fig9_gnat_params", "\n\n".join(blocks))
    emit_json(
        "BENCH_fig9_gnat_params.json",
        {
            "dataset": "citeseer",
            "attacker": "PEEGA",
            "k_t": K_T,
            "k_f": K_F,
            "k_e": K_E,
            "accuracy": rows,
        },
    )
    # Each sweep stays within a sane band (augmentation never collapses).
    for key, values in rows.items():
        assert max(values) - min(values) < 0.35, (key, values)
