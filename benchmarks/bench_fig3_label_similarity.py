"""Fig 3 — cross-label neighborhood similarity under growing Metattack budgets.

Paper: on the clean graph intra-label similarity is high and inter-label
similarity low; as the perturbation rate grows, inter-label similarity rises
(contexts blur) and GCN accuracy falls.  The paper uses rates
{0, 0.5, 1, 5}; rates above 1 multiply the edge count and are reported here
up to 1.0 (5.0 is reachable by setting REPRO_FIG3_MAX_RATE).
"""

import os

from _util import emit, emit_json, run_once

from repro.analysis import intra_inter_summary
from repro.attacks import Metattack
from repro.experiments import ExperimentRunner, ExperimentScale, format_series


def test_fig3_label_similarity(benchmark):
    config = ExperimentScale.from_env()
    max_rate = float(os.environ.get("REPRO_FIG3_MAX_RATE", 1.0))
    rates = [r for r in (0.0, 0.5, 1.0, 5.0) if r <= max_rate]
    runner = ExperimentRunner(config)

    def run():
        rows = {"intra": [], "inter": [], "accuracy": []}
        graph = runner.graph("cora")
        for rate in rates:
            if rate == 0.0:
                poisoned = graph
            else:
                poisoned = Metattack(seed=0).attack(
                    graph, perturbation_rate=rate
                ).poisoned
            intra, inter = intra_inter_summary(poisoned)
            accuracy = runner.evaluate_defender(poisoned, "cora", "GCN").mean
            rows["intra"].append(intra)
            rows["inter"].append(inter)
            rows["accuracy"].append(accuracy)
        return rows

    rows = run_once(benchmark, run)
    text = format_series(
        "ptb_rate",
        rates,
        rows,
        title=(
            "Fig 3 — label-context similarity vs Metattack budget on Cora "
            "(paper: inter-label similarity rises, accuracy falls)"
        ),
    )
    emit("fig3_label_similarity", text)
    emit_json(
        "BENCH_fig3_label_similarity.json",
        {"dataset": "cora", "rates": rates, "series": rows},
    )
    assert rows["inter"][-1] > rows["inter"][0], rows
    assert rows["accuracy"][-1] < rows["accuracy"][0], rows
    assert rows["intra"][0] > rows["inter"][0], rows
