"""Extension bench — fused closed-form training engine vs the autodiff oracle.

The autodiff path traces a fresh ``Tensor`` graph per epoch, computes the
never-consumed feature gradient of layer 0 (an ``n × in_dim`` GEMM), and
pays a second full forward per epoch for validation.  The fused engine
(:mod:`repro.nn.fastpath`) computes loss and parameter gradients in closed
form over epoch-reused buffers, skips the dead feature gradient, defers
validation to the next epoch's training forward (layer 0 carries no
dropout, so only the hidden-dim tail is recomputed), and — for GNAT's
multi-view forward — computes ``X @ W⁰`` once, shared across views.

The contract is *bit-identity*: both engines walk the same weight
trajectory, so losses, accuracies and stopping epochs must be EXACTLY
equal; only the cost may differ.  This bench fits plain GCN (a batch of
sweep-cell-sized fits, the grain every table/figure sweep is made of) and
the full multi-view GNAT with both engines, asserts outcome equality,
demands the fused engine is at least 2x faster per fit, and records the
per-fit times in ``benchmarks/results/BENCH_training.json`` (the CI perf
job's artifact).

Measurement notes: single-core CI containers are noisy neighbors, so the
bench times process CPU (contention-insensitive), interleaves the engines,
takes the best of several repeats, and re-measures a bounded number of
times before declaring a miss — the claim under test is "the engine
delivers a ≥2x fit, bit-identically", not a statistical distribution.
``REPRO_BENCH_QUICK=1`` (CI smoke mode) shrinks repeats and relaxes the
floor to 1.3x; the job still fails if fused is slower than autodiff.
"""

import os
import time

from _util import emit, emit_json, run_once

from repro.core import GNAT
from repro.datasets import load_dataset
from repro.experiments import format_series
from repro.graph.viewcache import clear_view_cache
from repro.nn import GCN, TrainConfig, train_node_classifier

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
MIN_SPEEDUP = 1.3 if QUICK else 2.0
REPEATS = 2 if QUICK else 5
ATTEMPTS = 2 if QUICK else 3
GCN_SCALE = 0.04  # the sweep-cell grain (tests/CI sweeps run here)
GCN_SEEDS = (11, 12, 13, 14, 15)  # one batch = a sweep column's trials
GNAT_SCALE = 0.15 if QUICK else 0.3
CONFIG = TrainConfig(epochs=200, patience=30)


def _fit_gcn_batch(graph, engine):
    outcomes = []
    for seed in GCN_SEEDS:
        model = GCN(graph.num_features, graph.num_classes, dropout=0.5, seed=seed)
        result = train_node_classifier(model, graph, CONFIG, engine=engine)
        outcomes.append(
            (result.train_losses, result.val_accuracies, result.test_accuracy,
             result.epochs_run)
        )
    return outcomes


def _fit_gnat(graph, engine):
    # The view cache would hide the view-build cost from whichever engine
    # runs second; clear it so both fits pay identical build work.
    clear_view_cache()
    result = GNAT(train_config=CONFIG, engine=engine, seed=5).fit(graph)
    return result.test_accuracy, result.val_accuracy


def _measure(fn):
    """Best-of-REPEATS process-CPU cost of ``fn`` per engine, interleaved."""
    best = {"autodiff": None, "fused": None}
    outcome = {}
    for _ in range(REPEATS):
        for engine in ("autodiff", "fused"):
            start = time.process_time()
            outcome[engine] = fn(engine)
            elapsed = time.process_time() - start
            if best[engine] is None or elapsed < best[engine]:
                best[engine] = elapsed
    return best, outcome


def _measure_until(fn, floor):
    """Re-measure up to ATTEMPTS times until the speedup clears ``floor``."""
    best, outcome = _measure(fn)
    for _ in range(ATTEMPTS - 1):
        if best["autodiff"] / best["fused"] >= floor:
            break
        again, outcome = _measure(fn)
        for engine, elapsed in again.items():
            best[engine] = min(best[engine], elapsed)
    return best, outcome


def test_ext_fused_training(benchmark):
    gcn_graph = load_dataset("cora", scale=GCN_SCALE)
    gnat_graph = load_dataset("cora", scale=GNAT_SCALE)

    def run():
        gcn_times, gcn_out = _measure_until(
            lambda engine: _fit_gcn_batch(gcn_graph, engine), MIN_SPEEDUP
        )
        gnat_times, gnat_out = _measure_until(
            lambda engine: _fit_gnat(gnat_graph, engine), MIN_SPEEDUP
        )
        return gcn_times, gcn_out, gnat_times, gnat_out

    gcn_times, gcn_out, gnat_times, gnat_out = run_once(benchmark, run)

    fits = len(GCN_SEEDS)
    per_fit = {
        "GCN/autodiff": gcn_times["autodiff"] / fits,
        "GCN/fused": gcn_times["fused"] / fits,
        "GNAT/autodiff": gnat_times["autodiff"],
        "GNAT/fused": gnat_times["fused"],
    }
    speedups = {
        "GCN": gcn_times["autodiff"] / gcn_times["fused"],
        "GNAT": gnat_times["autodiff"] / gnat_times["fused"],
    }
    text = format_series(
        "per-fit",
        list(per_fit),
        {"cpu seconds": [per_fit[key] for key in per_fit]},
        percent=False,
        title=(
            f"Extension — fused training engine (cora, GCN scale {GCN_SCALE} "
            f"x{fits} fits, GNAT scale {GNAT_SCALE}): "
            f"GCN {speedups['GCN']:.2f}x, GNAT {speedups['GNAT']:.2f}x"
        ),
    )
    emit("ext_fused_training", text)

    emit_json(
        "BENCH_training.json",
        {
            "dataset": "cora",
            "gcn_scale": GCN_SCALE,
            "gcn_fits": fits,
            "gnat_scale": GNAT_SCALE,
            "quick": QUICK,
            "min_speedup": MIN_SPEEDUP,
            "per_fit_cpu_seconds": per_fit,
            "speedups": speedups,
        },
    )

    # Bit-identity, not mere statistical closeness: the fused engine walks
    # the exact weight trajectory of autodiff, so every loss, accuracy and
    # stopping epoch must be equal to the last bit.
    assert gcn_out["autodiff"] == gcn_out["fused"]
    assert gnat_out["autodiff"] == gnat_out["fused"]

    # The engine exists to be fast: demand a real speedup, not noise.
    for name, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"fused {name} only {speedup:.2f}x faster; per-fit CPU seconds: "
            f"{per_fit[name + '/autodiff']:.4f} autodiff vs "
            f"{per_fit[name + '/fused']:.4f} fused"
        )
