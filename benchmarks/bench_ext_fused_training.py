"""Extension bench — fused closed-form training engine vs the autodiff oracle.

The autodiff path traces a fresh ``Tensor`` graph per epoch, computes
never-consumed feature gradients, rebuilds per-forward state (GAT's dense
support mask, attention intermediates), and pays a second full forward per
epoch for validation.  The fused engine (:mod:`repro.nn.fastpath`) computes
loss and parameter gradients in closed form over epoch-reused buffers,
skips the dead gradients, and — where training and eval forwards coincide —
reuses the training logits for validation (RGCN's mean path even falls out
of the training forward for free).

The contract is *bit-identity*: both engines walk the same weight
trajectory, so losses, accuracies and stopping epochs must be EXACTLY
equal; only the cost may differ.  This bench fits every fused-covered
model — GCN, the multi-view GNAT, and the three expensive defenders (GAT,
RGCN, SimPGCN) that dominate full-sweep wall time — with both engines,
asserts outcome equality, demands a per-model speedup floor (2x for the
PR-5 kernels, 1.5x for the attention/Gaussian/SSL kernels whose dense
float ops both engines share), and records per-fit times in
``benchmarks/results/BENCH_training.json`` under the ``repro.bench/1``
schema.  That committed file doubles as the CI perf gate's baseline:
``perf_gate.py`` diffs a fresh quick-mode run against it and fails the job
on normalized regression.

Measurement notes: single-core CI containers are noisy neighbors, so the
bench times process CPU (contention-insensitive), interleaves the engines,
takes the best of several repeats, and re-measures a bounded number of
times before declaring a miss — the claim under test is "the engine
delivers the floored speedup, bit-identically", not a statistical
distribution.  ``REPRO_BENCH_QUICK=1`` (CI smoke mode) shrinks repeats and
relaxes the floors; the job still fails if fused is slower than autodiff.
"""

import os
import time

from _util import emit, emit_json, run_once

from repro.core import GNAT
from repro.datasets import load_dataset
from repro.defenses import RGCN, SimPGCN
from repro.defenses.raw import RawGAT
from repro.experiments import format_series
from repro.graph.viewcache import clear_view_cache
from repro.nn import GCN, TrainConfig, train_node_classifier

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REPEATS = 2 if QUICK else 5
ATTEMPTS = 2 if QUICK else 3
SCALE = 0.04  # the sweep-cell grain (tests/CI sweeps run here)
SEEDS = (11, 12, 13, 14, 15)  # one batch = a sweep column's trials
GNAT_SCALE = 0.15 if QUICK else 0.3
CONFIG = TrainConfig(epochs=200, patience=30)

# Per-model speedup floors (quick, full).  GCN/GNAT skip whole dense GEMMs
# and share layer-0 products across views, so they clear 2x; the GAT/RGCN/
# SimPGCN kernels replicate the same dense (or sparse-operator) float ops
# as autodiff and win on tracing overhead, buffer reuse, dead gradients and
# validation reuse — a 1.5x floor per fit.
FLOORS = {
    "GCN": (1.3, 2.0),
    "GNAT": (1.3, 2.0),
    "GAT": (1.15, 1.5),
    "RGCN": (1.2, 1.5),
    "SimPGCN": (1.2, 1.5),
}


def _outcome(result):
    return (
        result.test_accuracy,
        result.val_accuracy,
        result.details.get("epochs"),
    )


def _fit_gcn_batch(graph, engine):
    outcomes = []
    for seed in SEEDS:
        model = GCN(graph.num_features, graph.num_classes, dropout=0.5, seed=seed)
        result = train_node_classifier(model, graph, CONFIG, engine=engine)
        outcomes.append(
            (result.train_losses, result.val_accuracies, result.test_accuracy,
             result.epochs_run)
        )
    return outcomes


def _fit_gnat(graph, engine):
    # The view cache would hide the view-build cost from whichever engine
    # runs second; clear it so both fits pay identical build work.
    clear_view_cache()
    result = GNAT(train_config=CONFIG, engine=engine, seed=5).fit(graph)
    return result.test_accuracy, result.val_accuracy


def _fit_gat_batch(graph, engine):
    return [
        _outcome(RawGAT(train_config=CONFIG, engine=engine, seed=seed).fit(graph))
        for seed in SEEDS
    ]


def _fit_rgcn_batch(graph, engine):
    return [
        _outcome(RGCN(train_config=CONFIG, engine=engine, seed=seed).fit(graph))
        for seed in SEEDS
    ]


def _fit_simpgcn_batch(graph, engine):
    return [
        _outcome(
            SimPGCN(train_config=CONFIG, engine=engine, seed=seed, knn_k=5).fit(graph)
        )
        for seed in SEEDS
    ]


def _measure(fn):
    """Best-of-REPEATS process-CPU cost of ``fn`` per engine, interleaved."""
    best = {"autodiff": None, "fused": None}
    outcome = {}
    for _ in range(REPEATS):
        for engine in ("autodiff", "fused"):
            start = time.process_time()
            outcome[engine] = fn(engine)
            elapsed = time.process_time() - start
            if best[engine] is None or elapsed < best[engine]:
                best[engine] = elapsed
    return best, outcome


def _measure_until(fn, floor):
    """Re-measure up to ATTEMPTS times until the speedup clears ``floor``."""
    best, outcome = _measure(fn)
    for _ in range(ATTEMPTS - 1):
        if best["autodiff"] / best["fused"] >= floor:
            break
        again, outcome = _measure(fn)
        for engine, elapsed in again.items():
            best[engine] = min(best[engine], elapsed)
    return best, outcome


def test_ext_fused_training(benchmark):
    cell_graph = load_dataset("cora", scale=SCALE)
    gnat_graph = load_dataset("cora", scale=GNAT_SCALE)

    cases = {
        "GCN": (lambda engine: _fit_gcn_batch(cell_graph, engine), len(SEEDS)),
        "GNAT": (lambda engine: _fit_gnat(gnat_graph, engine), 1),
        "GAT": (lambda engine: _fit_gat_batch(cell_graph, engine), len(SEEDS)),
        "RGCN": (lambda engine: _fit_rgcn_batch(cell_graph, engine), len(SEEDS)),
        "SimPGCN": (lambda engine: _fit_simpgcn_batch(cell_graph, engine), len(SEEDS)),
    }

    def run():
        measured = {}
        for name, (fn, _) in cases.items():
            measured[name] = _measure_until(fn, FLOORS[name][0 if QUICK else 1])
        return measured

    measured = run_once(benchmark, run)

    models = {}
    for name, (times, _) in measured.items():
        fits = cases[name][1]
        floor = FLOORS[name][0 if QUICK else 1]
        models[name] = {
            "fits": fits,
            "autodiff_cpu_seconds": times["autodiff"],
            "fused_cpu_seconds": times["fused"],
            "per_fit_autodiff": times["autodiff"] / fits,
            "per_fit_fused": times["fused"] / fits,
            "speedup": times["autodiff"] / times["fused"],
            "min_speedup": floor,
        }

    labels = [
        f"{name}/{engine}" for name in models for engine in ("autodiff", "fused")
    ]
    values = [
        models[name][f"per_fit_{engine}"]
        for name in models
        for engine in ("autodiff", "fused")
    ]
    headline = ", ".join(
        f"{name} {models[name]['speedup']:.2f}x" for name in models
    )
    text = format_series(
        "per-fit",
        labels,
        {"cpu seconds": values},
        percent=False,
        title=(
            f"Extension — fused training engine (cora scale {SCALE}, "
            f"GNAT scale {GNAT_SCALE}): {headline}"
        ),
    )
    emit("ext_fused_training", text)

    emit_json(
        "BENCH_training.json",
        {
            "dataset": "cora",
            "scale": SCALE,
            "gnat_scale": GNAT_SCALE,
            "seeds": list(SEEDS),
            "quick": QUICK,
            "models": models,
        },
    )

    # Bit-identity, not mere statistical closeness: the fused engine walks
    # the exact weight trajectory of autodiff, so every loss, accuracy and
    # stopping epoch must be equal to the last bit.
    for name, (_, outcome) in measured.items():
        assert outcome["autodiff"] == outcome["fused"], (
            f"{name}: fused outcome diverged from autodiff"
        )

    # The engine exists to be fast: demand a real speedup, not noise.
    for name, record in models.items():
        assert record["speedup"] >= record["min_speedup"], (
            f"fused {name} only {record['speedup']:.2f}x faster; per-fit CPU "
            f"seconds: {record['per_fit_autodiff']:.4f} autodiff vs "
            f"{record['per_fit_fused']:.4f} fused"
        )
