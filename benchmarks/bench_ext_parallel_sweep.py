"""Extension bench — parallel sweep scheduler vs the serial runner.

Two measurements, one determinism gate:

1. **Scheduler overlap** (always asserted): a sweep whose trials are
   latency-dominated — every defender trial carries an injected 1s hang —
   must overlap across pool workers.  Latency overlap needs no spare
   cores, so this part asserts a real speedup even on a single-core CI
   runner, while exercising exactly the scheduler/merge machinery a
   compute-bound sweep uses.
2. **Real grid** (speedup asserted on >= 4 cores): the table4-shaped
   PEEGA grid, serial vs ``--jobs 4``.  On machines with enough cores the
   4-job run must be >= 2.5x faster; on smaller machines the wall times
   are still recorded so the artifact shows what parallelism bought.

In both parts the parallel table must be *bit-identical* to the serial
one — that assertion never relaxes, because a scheduler that changes
numbers is wrong at any speed.

Set ``REPRO_BENCH_QUICK=1`` (CI smoke mode) for shorter hangs, a smaller
grid, and a relaxed overlap floor.
"""

import os

from _util import emit, run_once

from repro.experiments import (
    ExperimentRunner,
    ExperimentScale,
    TrialPolicy,
    TrialSupervisor,
    format_series,
    make_executor,
)
from repro.utils import faults
from repro.utils.blas import cpu_count
from repro.utils.faults import FaultInjector

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
JOBS = 4
HANG_SECONDS = 0.5 if QUICK else 1.0
HANG_SEEDS = 2 if QUICK else 4
MIN_OVERLAP_SPEEDUP = 1.5 if QUICK else 2.5
MIN_GRID_SPEEDUP = 1.5 if QUICK else 2.5


def _cells(table):
    return {
        (row, name): (cell.values if cell is not None else None)
        for row, columns in table.rows.items()
        for name, cell in columns.items()
    }


def _sweep(jobs, config, injector=None, **table_kwargs):
    executor = make_executor(jobs)
    runner = ExperimentRunner(
        config, supervisor=TrialSupervisor(TrialPolicy()), executor=executor
    )
    with faults.active(injector):
        table = runner.accuracy_table("cora", **table_kwargs)
    return table, executor.timings.makespan_seconds


def test_ext_parallel_sweep(benchmark):
    def run():
        # Part 1: latency-dominated trials (injected hangs) — scheduler
        # overlap is assertable regardless of core count.
        hang_config = ExperimentScale(scale=0.04, seeds=HANG_SEEDS, rate=0.1)
        hang_grid = dict(attackers=[], defenders=["GCN", "GCN-SVD"])
        spec = f"defender:hang:seconds={HANG_SECONDS}"
        overlap = {}
        for jobs in (1, JOBS):
            table, seconds = _sweep(
                jobs,
                hang_config,
                injector=FaultInjector(FaultInjector.parse(spec)),
                **hang_grid,
            )
            overlap[jobs] = (table, seconds)

        # Part 2: the real compute-bound grid (table4-shaped).
        grid_config = ExperimentScale(scale=0.04, seeds=2, rate=0.1)
        grid = dict(attackers=["PEEGA"], defenders=["GCN", "GCN-SVD"])
        real = {}
        for jobs in (1, JOBS):
            table, seconds = _sweep(jobs, grid_config, **grid)
            real[jobs] = (table, seconds)
        return overlap, real

    overlap, real = run_once(benchmark, run)

    overlap_speedup = overlap[1][1] / overlap[JOBS][1]
    grid_speedup = real[1][1] / real[JOBS][1]
    cores = cpu_count()
    text = format_series(
        "jobs",
        [1, JOBS],
        {
            f"hang-sweep seconds ({HANG_SEEDS * 2} trials x {HANG_SECONDS}s hang)": [
                overlap[1][1],
                overlap[JOBS][1],
            ],
            "real-grid seconds (PEEGA x 2 defenders x 2 seeds)": [
                real[1][1],
                real[JOBS][1],
            ],
        },
        title=(
            f"Extension — parallel sweep scheduler ({cores} cores): "
            f"overlap {overlap_speedup:.2f}x, real grid {grid_speedup:.2f}x"
        ),
        percent=False,
    )
    emit("ext_parallel_sweep", text)

    # Determinism gate: identical numbers at any job count, both sweeps.
    assert _cells(overlap[1][0]) == _cells(overlap[JOBS][0])
    assert _cells(real[1][0]) == _cells(real[JOBS][0])
    assert overlap[1][0].failures == overlap[JOBS][0].failures == []
    assert real[1][0].failures == real[JOBS][0].failures == []

    # Latency overlap must pay off even on one core.
    assert overlap_speedup >= MIN_OVERLAP_SPEEDUP, (
        f"scheduler overlap only {overlap_speedup:.2f}x "
        f"({overlap[1][1]:.2f}s serial vs {overlap[JOBS][1]:.2f}s at {JOBS} jobs)"
    )
    # Compute-bound speedup needs actual cores to run on.
    if cores >= JOBS:
        assert grid_speedup >= MIN_GRID_SPEEDUP, (
            f"real grid only {grid_speedup:.2f}x on {cores} cores "
            f"({real[1][1]:.2f}s serial vs {real[JOBS][1]:.2f}s at {JOBS} jobs)"
        )
