"""Table IX — GNAT ablation: single views, multi-view combinations, and
merged-graph variants, on PEEGA-poisoned graphs (r=0.1).

Paper shape: multi-view combinations beat their single-view components
(GNAT-t+f+e best), and every multi-view variant beats the corresponding
merged-graph variant (separate correlated views > one union graph).
"""

from _util import emit, emit_json, run_once

from repro.core import GNAT
from repro.experiments import ExperimentRunner, format_series

VARIANTS = [
    ("GNAT-t", "t", False),
    ("GNAT-f", "f", False),
    ("GNAT-e", "e", False),
    ("GNAT-t+f", "tf", False),
    ("GNAT-t+e", "te", False),
    ("GNAT-f+e", "fe", False),
    ("GNAT-t+f+e", "tfe", False),
    ("GNAT-tf", "tf", True),
    ("GNAT-te", "te", True),
    ("GNAT-fe", "fe", True),
    ("GNAT-tfe", "tfe", True),
]


def test_table9_gnat_ablation(benchmark):
    runner = ExperimentRunner()

    def run():
        poisoned = runner.attack("cora", "PEEGA").poisoned
        scores = {}
        for label, views, merged in VARIANTS:
            cell = runner.evaluate_defender(
                poisoned,
                "cora",
                label,
                defender_factory=lambda seed, v=views, m=merged: GNAT(
                    views=v, merge_views=m, seed=seed
                ),
            )
            scores[label] = cell.mean
        return scores

    scores = run_once(benchmark, run)
    text = format_series(
        "variant",
        list(scores.keys()),
        {"accuracy": list(scores.values())},
        title="Table IX — GNAT ablation on PEEGA-poisoned Cora (r=0.1)",
    )
    emit("table9_gnat_ablation", text)
    emit_json(
        "BENCH_table9_gnat_ablation.json",
        {"dataset": "cora", "attacker": "PEEGA", "accuracy": scores},
    )
    # Multi-view beats merged for the same view set (paper's key ablation).
    assert scores["GNAT-t+e"] >= scores["GNAT-te"] - 0.02, scores
    assert scores["GNAT-t+f+e"] >= scores["GNAT-tfe"] - 0.02, scores
    # Combining views does not fall below the weakest single view.
    assert scores["GNAT-t+f+e"] >= scores["GNAT-f"], scores
