"""Table IV — node classification accuracy on Cora under 0.1 perturbation.

Rows: {Clean, PGD, MinMax, Metattack, GF-Attack, PEEGA};
columns: {GCN, GAT, GCN-Jaccard, GCN-SVD, RGCN, Pro-GNN, SimPGCN, GNAT}.

Paper shape: Metattack and PEEGA are the strongest attackers; GF-Attack is
marginal; GNAT is the strongest defender on (almost) every row.
"""

from _util import emit, emit_json, run_once, table_stats

from repro.experiments import ExperimentRunner, format_accuracy_table


def test_table4_cora(benchmark):
    runner = ExperimentRunner()
    table = run_once(benchmark, lambda: runner.accuracy_table("cora"))
    emit(
        "table4_cora",
        format_accuracy_table(table, title="Table IV — Cora, r=0.1 (accuracy %)"),
    )
    emit_json(
        "BENCH_table4_cora.json",
        {"dataset": table.dataset, "rate": table.rate, "rows": table_stats(table.rows)},
    )

    gcn = {name: row["GCN"].mean for name, row in table.rows.items()}
    # Strong attackers beat the weak spectral attacker against raw GCN.
    assert gcn["Metattack"] < gcn["GF-Attack"], gcn
    assert gcn["PEEGA"] < gcn["Clean"], gcn
    # GNAT recovers over raw GCN under the strongest attacker.
    meta_row = table.rows["Metattack"]
    assert meta_row["GNAT"].mean > meta_row["GCN"].mean, meta_row
