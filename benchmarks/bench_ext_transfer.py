"""Extension bench — cross-architecture transferability of PEEGA's poison.

PEEGA's premise is that its model-agnostic surrogate transfers to unseen
victims.  This bench poisons Cora once and trains three different victim
architectures (GCN, SGC, GAT) on the same poison, reporting the damage per
victim — the black-box claim quantified beyond the paper's GCN-centric
tables.
"""

import numpy as np

from _util import emit, run_once

from repro.experiments import ExperimentRunner, format_series
from repro.nn import APPNP, GAT, GCN, SGC, GraphSAGE, TrainConfig, train_node_classifier


def _train(model_factory, graph, seeds, raw_adjacency=False):
    accs = []
    for seed in range(seeds):
        model = model_factory(seed)
        adjacency = graph.adjacency if raw_adjacency else None
        accs.append(
            train_node_classifier(
                model, graph, TrainConfig(), adjacency=adjacency
            ).test_accuracy
        )
    return float(np.mean(accs))


def test_ext_transferability(benchmark):
    runner = ExperimentRunner()

    def run():
        graph = runner.graph("cora")
        poisoned = runner.attack("cora", "PEEGA").poisoned
        victims = {
            "GCN": (lambda s: GCN(graph.num_features, graph.num_classes, seed=s), False),
            "SGC": (lambda s: SGC(graph.num_features, graph.num_classes, seed=s), False),
            "GAT": (lambda s: GAT(graph.num_features, graph.num_classes, seed=s), False),
            "APPNP": (
                lambda s: APPNP(graph.num_features, graph.num_classes, seed=s),
                False,
            ),
            "GraphSAGE": (
                lambda s: GraphSAGE(graph.num_features, graph.num_classes, seed=s),
                True,  # SAGE builds its own aggregator from the raw adjacency
            ),
        }
        seeds = runner.config.seeds
        clean = {
            name: _train(f, graph, seeds, raw) for name, (f, raw) in victims.items()
        }
        attacked = {
            name: _train(f, poisoned, seeds, raw) for name, (f, raw) in victims.items()
        }
        return clean, attacked

    clean, attacked = run_once(benchmark, run)
    names = list(clean)
    text = format_series(
        "victim",
        names,
        {
            "clean": [clean[n] for n in names],
            "PEEGA-poisoned": [attacked[n] for n in names],
            "damage": [clean[n] - attacked[n] for n in names],
        },
        title="Extension — PEEGA poison transfers across victim architectures (Cora, r=0.1)",
    )
    emit("ext_transfer", text)
    # The poison must hurt every architecture (black-box transferability).
    for name in names:
        assert attacked[name] < clean[name] + 0.02, (name, clean, attacked)
