"""Extension bench — incremental sparse PEEGA engine vs the dense oracle.

The dense reference path re-differentiates a dense ``(n, n)`` autodiff graph
(including a from-scratch GCN normalization) for every greedy flip.  The
incremental engine (:class:`repro.core.difference.IncrementalScorer` on top
of :class:`repro.surrogate.PropagationCache`) normalizes once, applies each
flip as a sparse delta, and re-materializes only the propagation/score rows
the flip touched.  Both engines pick the *same flip sequence* (the
equivalence suite pins this down), so the poisoned graphs — and the
post-attack GCN accuracy — must match; only the wall-clock may differ.

This bench runs both engines at attack budget 100 on synthetic Cora and
asserts the incremental engine is at least 3x faster while landing within
0.5 accuracy points of the dense oracle's poisoned-graph GCN accuracy.

Set ``REPRO_BENCH_QUICK=1`` (CI smoke mode) for a reduced budget and a
relaxed 1.5x speedup floor — tiny budgets amortize the one-off cache build
over fewer iterations.
"""

import os

from _util import emit, run_once

from repro.attacks.base import AttackBudget
from repro.core import PEEGA
from repro.experiments import ExperimentRunner, format_series

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BUDGET = 25 if QUICK else 100
MIN_SPEEDUP = 1.5 if QUICK else 3.0


def test_ext_incremental_peega(benchmark):
    runner = ExperimentRunner()

    def run():
        graph = runner.graph("cora")
        results, seconds, accuracy = {}, [], []
        # Warm both engines (BLAS threads, page cache, JIT-able ufunc loops)
        # so the timed runs below measure steady-state per-flip cost.
        for use_cache in (False, True):
            PEEGA(use_cache=use_cache, seed=0).attack(graph, AttackBudget(total=2))
        for use_cache in (False, True):
            attacker = PEEGA(use_cache=use_cache, seed=0)
            result = attacker.attack(graph, AttackBudget(total=BUDGET))
            results[use_cache] = result
            seconds.append(result.runtime_seconds)
            accuracy.append(
                runner.evaluate_defender(result.poisoned, "cora", "GCN").mean
            )
        return results, seconds, accuracy

    results, seconds, accuracy = run_once(benchmark, run)
    speedup = seconds[0] / seconds[1]
    text = format_series(
        "engine",
        ["dense", "incremental"],
        {"GCN accuracy": accuracy},
        title=(
            f"Extension — incremental PEEGA engine (budget {BUDGET}, "
            f"synthetic Cora): {speedup:.2f}x speedup"
        ),
    )
    timing = format_series(
        "engine",
        ["dense", "incremental"],
        {"attack seconds": seconds},
        percent=False,
    )
    emit("ext_incremental_peega", text + "\n" + timing)

    # Same greedy trajectory: flip-for-flip identical perturbations.
    dense, cached = results[False], results[True]
    assert [(f.u, f.v) for f in dense.edge_flips] == [
        (f.u, f.v) for f in cached.edge_flips
    ]
    assert [(f.node, f.dim) for f in dense.feature_flips] == [
        (f.node, f.dim) for f in cached.feature_flips
    ]
    # Post-attack GCN accuracy within 0.5 points of the dense oracle.
    assert abs(accuracy[0] - accuracy[1]) <= 0.005, accuracy
    # The engine exists to be fast: demand a real speedup, not noise.
    assert speedup >= MIN_SPEEDUP, (
        f"incremental engine only {speedup:.2f}x faster "
        f"({seconds[0]:.2f}s dense vs {seconds[1]:.2f}s incremental)"
    )
