"""Extension bench — batched greedy selection in PEEGA (paper Sec. VI).

The conclusion notes that Alg. 1's one-flip-per-gradient loop makes cost
linear in the budget and proposes parallel selection (Gumbel-style) as
future work.  ``PEEGA(flips_per_step=k)`` is this repo's deterministic
version of that idea: take the top-k scored flips per gradient evaluation.
This bench sweeps k and reports the attack-strength / wall-clock trade-off
(DESIGN.md §5 ablation #1).
"""

from _util import emit, run_once

from repro.core import PEEGA
from repro.experiments import ExperimentRunner, format_series

BATCH_SIZES = [1, 2, 4, 8]


def test_ext_batched_peega(benchmark):
    runner = ExperimentRunner()

    def run():
        graph = runner.graph("cora")
        accuracy, seconds = [], []
        for k in BATCH_SIZES:
            attacker = PEEGA(
                lam=0.02, focus_training_nodes=False, flips_per_step=k, seed=0
            )
            result = attacker.attack(graph, perturbation_rate=runner.config.rate)
            seconds.append(result.runtime_seconds)
            accuracy.append(
                runner.evaluate_defender(result.poisoned, "cora", "GCN").mean
            )
        return accuracy, seconds

    accuracy, seconds = run_once(benchmark, run)
    text = format_series(
        "flips/step",
        BATCH_SIZES,
        {"GCN accuracy": accuracy},
        title="Extension — batched PEEGA: attack strength vs selection batch",
    )
    timing = format_series(
        "flips/step",
        BATCH_SIZES,
        {"attack seconds": seconds},
        percent=False,
    )
    emit("ext_batched_peega", text + "\n" + timing)
    # Batching must speed the attack up roughly proportionally...
    assert seconds[-1] < seconds[0], seconds
    # ...without destroying attack strength (small fidelity loss allowed).
    assert accuracy[-1] <= accuracy[0] + 0.06, accuracy
