"""Table VII — running time of each attacker at perturbation rate 0.1.

Paper shape: PEEGA is the fastest effective attacker on the citation graphs
(single-level objective, one gradient per flip); GF-Attack is the slowest
(spectral decomposition per candidate evaluation); Metattack pays for
inner-training unrolls; PGD/MinMax are cheap but weak.

Two caveats at reduced scale (both documented in EXPERIMENTS.md):

* the headline rows use the strength-calibrated presets, whose Metattack
  unrolls only 10 inner steps (the original trains ~100 epochs per flip);
  the extra ``Metattack-100`` row restores the faithful training length and
  with it the paper's Metattack ≫ PEEGA ordering;
* on the scaled-down Citeseer, PEEGA's O(δ·d·|V|²) cost with the full
  d=3703 feature dimension outweighs GF-Attack's O(|V|³) step at |V|≈300 —
  at the paper's |V|=2110 the asymptotics dominate again.
"""

from _util import emit, emit_json, run_once, table_stats

from repro.attacks import Metattack
from repro.datasets import dataset_names
from repro.experiments import (
    ExperimentRunner,
    ExperimentScale,
    attacker_timings,
    format_timing_table,
)
from repro.experiments.runner import CellResult


def test_table7_attacker_time(benchmark):
    datasets = dataset_names()
    config = ExperimentScale.from_env()

    def run():
        timings = attacker_timings(datasets, config=config, repeats=2)
        # Faithful-length Metattack reference row (the original's ~100
        # inner epochs), on the citation graphs.
        runner = ExperimentRunner(config)
        faithful = {}
        for dataset in ("cora", "citeseer"):
            graph = runner.graph(dataset)
            times = []
            for seed in range(2):
                attacker = Metattack(inner_steps=100, seed=seed)
                result = attacker.attack(graph, perturbation_rate=config.rate)
                times.append(result.runtime_seconds)
            faithful[dataset] = CellResult.from_values(times)
        timings["Metattack-100"] = faithful
        return timings

    timings = run_once(benchmark, run)
    emit(
        "table7_attack_time",
        format_timing_table(
            timings, title="Table VII — attack generation time (seconds)"
        ),
    )
    emit_json(
        "BENCH_table7_attack_time.json",
        {"unit": "seconds", "rows": table_stats(timings)},
    )
    peega = timings["PEEGA"]["cora"].mean
    # GF-Attack's per-candidate spectral cost dominates PEEGA on Cora.
    assert peega < timings["GF-Attack"]["cora"].mean, timings
    # At the faithful inner-training length, Metattack is slower than PEEGA.
    assert peega < timings["Metattack-100"]["cora"].mean, timings
    # Citeseer scale-regime bound: same order of magnitude as Metattack-100.
    assert (
        timings["PEEGA"]["citeseer"].mean
        < 5 * timings["Metattack-100"]["citeseer"].mean
    ), timings
