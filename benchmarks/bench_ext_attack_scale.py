"""Extension bench — sampled-block attacks (PRBCD/GRBCD) at SBM scale tiers.

Dense PEEGA materializes an n x n gradient per step, which caps it near
10^4 nodes.  The block attackers score only a sampled candidate block
through the O(block) pair kernel, so attack cost is governed by the block
size and the budget, not by n^2.  This bench generates the streamed SBM
tiers, runs both attackers on each, and records the headline wall-times in
``benchmarks/results/BENCH_attack_scale.json`` (the CI scale-smoke job's
regression artifact: it diffs the key schema and gates on wall-time
ratios against the committed baseline).

``REPRO_BENCH_QUICK=1`` (CI smoke mode) shrinks epochs/budgets so the
100k-node tier finishes inside the smoke deadline.  The 1M tier is heavy
(~2 GB RSS, minutes of wall time) and only runs when ``REPRO_BENCH_1M=1``
is set explicitly; the committed baseline therefore carries the 10k and
100k tiers.
"""

import os
import time

from _util import emit, emit_json, run_once

from repro.attacks import GRBCD, PRBCD
from repro.attacks.base import AttackBudget
from repro.datasets import load_dataset
from repro.experiments import format_series

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
WITH_1M = bool(os.environ.get("REPRO_BENCH_1M"))

# Per-tier knobs: (budget, prbcd_epochs, grbcd_flips_per_step, block_size).
TIERS = {
    "sbm-10k": (100, 3 if QUICK else 10, 25, 50_000),
    "sbm-100k": (200 if QUICK else 500, 3 if QUICK else 5, 100, 200_000),
}
if WITH_1M:
    TIERS["sbm-1m"] = (300, 3, 150, 300_000)


def _attack_tier(name, budget, prbcd_epochs, grbcd_flips, block_size):
    start = time.perf_counter()
    graph = load_dataset(name, seed=0)
    generate_seconds = time.perf_counter() - start

    attackers = {
        "PRBCD": PRBCD(
            lam=0.0, p=2, block_size=block_size, epochs=prbcd_epochs, seed=0
        ),
        "GRBCD": GRBCD(
            lam=0.0, p=2, block_size=block_size, flips_per_step=grbcd_flips,
            seed=0,
        ),
    }
    attacks = {}
    for attacker_name, attacker in attackers.items():
        result = attacker.attack(graph, AttackBudget(total=float(budget)))
        result.verify_budget()
        best = max(result.objective_trace) if result.objective_trace else 0.0
        attacks[attacker_name] = {
            "wall_seconds": result.runtime_seconds,
            "flips": len(result.edge_flips),
            "best_objective": best,
        }
        assert attacks[attacker_name]["flips"] > 0, (
            f"{attacker_name} committed no flips on {name}"
        )
        assert best > 0.0, f"{attacker_name} did not move the objective on {name}"
    return {
        "nodes": graph.num_nodes,
        "edges": int(graph.adjacency.nnz // 2),
        "budget": budget,
        "generate_seconds": generate_seconds,
        "attacks": attacks,
    }


def test_ext_attack_scale(benchmark):
    def run():
        return {
            name: _attack_tier(name, *knobs) for name, knobs in TIERS.items()
        }

    tiers = run_once(benchmark, run)

    rows = []
    series = {"generate s": [], "PRBCD s": [], "GRBCD s": []}
    for name, record in tiers.items():
        rows.append(f"{name} (n={record['nodes']}, m={record['edges']})")
        series["generate s"].append(record["generate_seconds"])
        series["PRBCD s"].append(record["attacks"]["PRBCD"]["wall_seconds"])
        series["GRBCD s"].append(record["attacks"]["GRBCD"]["wall_seconds"])
    text = format_series(
        "tier",
        rows,
        series,
        percent=False,
        title=(
            "Extension — sampled-block attacks at SBM scale "
            f"(quick={QUICK}, 1M={'on' if WITH_1M else 'off'})"
        ),
    )
    emit("ext_attack_scale", text)

    emit_json("BENCH_attack_scale.json", {"quick": QUICK, "tiers": tiers})
