"""Fig 5(a) — PEEGA attack-type ablation: FP vs TM vs TM+FP on Cora.

Paper: under equal per-unit cost, feature perturbations (FP) alone barely
hurt; topology modifications (TM) and TM+FP are nearly identical — each
edge flip affects the whole message-passing neighborhood while a feature
flip touches one dimension of one node.
"""

from _util import emit, emit_json, run_once

from repro.core import PEEGA
from repro.experiments import ExperimentRunner, format_series


def test_fig5a_attack_types(benchmark):
    runner = ExperimentRunner()

    def run():
        graph = runner.graph("cora")
        variants = {
            "FP": PEEGA(attack_topology=False, attack_features=True, seed=0),
            "TM": PEEGA(attack_topology=True, attack_features=False, seed=0),
            "TM+FP": PEEGA(attack_topology=True, attack_features=True, seed=0),
        }
        accuracy = {}
        for label, attacker in variants.items():
            poisoned = attacker.attack(
                graph, perturbation_rate=runner.config.rate
            ).poisoned
            accuracy[label] = runner.evaluate_defender(poisoned, "cora", "GCN").mean
        accuracy["Clean"] = runner.evaluate_defender(graph, "cora", "GCN").mean
        return accuracy

    accuracy = run_once(benchmark, run)
    text = format_series(
        "variant",
        list(accuracy.keys()),
        {"GCN accuracy": list(accuracy.values())},
        title="Fig 5(a) — PEEGA variants on Cora, r=0.1 (paper: FP weak, TM ≈ TM+FP)",
    )
    emit("fig5a_attack_ablation", text)
    emit_json(
        "BENCH_fig5a_attack_ablation.json",
        {"dataset": "cora", "gcn_accuracy": accuracy},
    )
    assert accuracy["FP"] > accuracy["TM"], accuracy  # FP is the weak variant
    assert abs(accuracy["TM"] - accuracy["TM+FP"]) < 0.05, accuracy
