"""Table V — node classification accuracy on Citeseer under 0.1 perturbation.

Paper shape: PEEGA is the strongest attacker on Citeseer (beating even the
gray-box Metattack); GNAT is the best defender on every row.
"""

from _util import emit, emit_json, run_once, table_stats

from repro.experiments import ExperimentRunner, format_accuracy_table


def test_table5_citeseer(benchmark):
    runner = ExperimentRunner()
    table = run_once(benchmark, lambda: runner.accuracy_table("citeseer"))
    emit(
        "table5_citeseer",
        format_accuracy_table(table, title="Table V — Citeseer, r=0.1 (accuracy %)"),
    )
    emit_json(
        "BENCH_table5_citeseer.json",
        {"dataset": table.dataset, "rate": table.rate, "rows": table_stats(table.rows)},
    )

    gcn = {name: row["GCN"].mean for name, row in table.rows.items()}
    assert gcn["PEEGA"] < gcn["Clean"], gcn
    assert gcn["PEEGA"] < gcn["GF-Attack"], gcn
