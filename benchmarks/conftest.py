"""Makes the benchmarks directory importable (for ``_util``) and keeps
pytest-benchmark defaults suited to one-shot experiment regeneration."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
