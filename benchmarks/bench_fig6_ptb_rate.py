"""Fig 6 — accuracy vs perturbation rate for {GCN, Pro-GNN, GNAT} under
{PEEGA, Metattack} on all three datasets.

Paper shape: accuracy decreases with the rate for every model; GNAT's curve
stays above GCN's, and GNAT degrades more gracefully than Pro-GNN.
"""

import os

from _util import emit, emit_json, run_once

from repro.experiments import ExperimentRunner, format_series

RATES = [0.0, 0.05, 0.1, 0.15, 0.2]


def test_fig6_perturbation_rate(benchmark):
    runner = ExperimentRunner()
    datasets = os.environ.get("REPRO_FIG6_DATASETS", "cora,citeseer,polblogs").split(",")
    defenders = ["GCN", "Pro-GNN", "GNAT"]
    attackers = ["PEEGA", "Metattack"]

    def run():
        all_series: dict[str, dict[str, list[float]]] = {}
        for dataset in datasets:
            series: dict[str, list[float]] = {}
            for attacker in attackers:
                for defender in defenders:
                    key = f"{defender}+{attacker[0]}"
                    series[key] = []
            clean = runner.graph(dataset)
            for rate in RATES:
                for attacker in attackers:
                    graph = (
                        clean
                        if rate == 0.0
                        else runner.attack(dataset, attacker, rate).poisoned
                    )
                    for defender in defenders:
                        cell = runner.evaluate_defender(graph, dataset, defender)
                        series[f"{defender}+{attacker[0]}"].append(cell.mean)
            all_series[dataset] = series
        return all_series

    all_series = run_once(benchmark, run)
    blocks = []
    for dataset, series in all_series.items():
        blocks.append(
            format_series(
                "rate",
                RATES,
                series,
                title=f"Fig 6 — accuracy vs perturbation rate ({dataset}); "
                "+P = PEEGA poison, +M = Metattack poison",
            )
        )
    emit("fig6_ptb_rate", "\n\n".join(blocks))
    emit_json(
        "BENCH_fig6_ptb_rate.json",
        {"rates": RATES, "datasets": all_series},
    )

    for dataset, series in all_series.items():
        for attacker in ("P", "M"):
            gcn = series[f"GCN+{attacker}"]
            gnat = series[f"GNAT+{attacker}"]
            # Attacks reduce GCN accuracy at the highest rate vs clean.
            assert gcn[-1] <= gcn[0] + 0.02, (dataset, attacker, gcn)
            # GNAT is at least competitive with GCN at the highest rate.
            assert gnat[-1] >= gcn[-1] - 0.05, (dataset, attacker, series)
