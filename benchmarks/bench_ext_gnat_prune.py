"""Extension bench — GNAT + edge removal (the paper's future work, Sec. VI).

The published GNAT only *adds* edges; the conclusion proposes also
*removing* attacker noise.  This bench implements that proposal (GNAT's
``prune_threshold``: drop edges whose endpoints' cosine feature similarity
is below a threshold before augmenting) and sweeps the threshold on
PEEGA-poisoned Cora next to the published configuration.

Measured outcome: naive similarity pruning removes legitimate dissimilar
edges along with the adversarial ones and *underperforms* add-only GNAT on
these graphs — evidence for why the paper deferred removal to future work.
"""

from _util import emit, run_once

from repro.core import GNAT
from repro.experiments import ExperimentRunner, format_series

THRESHOLDS = [None, 0.01, 0.03, 0.05, 0.1]


def test_ext_gnat_prune(benchmark):
    runner = ExperimentRunner()

    def run():
        poisoned = runner.attack("cora", "PEEGA").poisoned
        scores = []
        for threshold in THRESHOLDS:
            cell = runner.evaluate_defender(
                poisoned,
                "cora",
                "GNAT",
                defender_factory=lambda seed, t=threshold: GNAT(
                    prune_threshold=t, seed=seed
                ),
            )
            scores.append(cell.mean)
        gcn = runner.evaluate_defender(poisoned, "cora", "GCN").mean
        return scores, gcn

    scores, gcn = run_once(benchmark, run)
    text = format_series(
        "prune_thr",
        ["off"] + THRESHOLDS[1:],
        {"GNAT accuracy": scores, "GCN (no defense)": [gcn] * len(scores)},
        title=(
            "Extension — GNAT with adversarial-edge pruning on PEEGA-poisoned "
            "Cora (paper Sec. VI future work: add AND remove)"
        ),
    )
    emit("ext_gnat_prune", text)
    # Finding: naive similarity pruning is NOT a free win here — the
    # synthetic graphs (like real ones) contain legitimately dissimilar
    # clean edges, so pruning trades attack edges for real structure.  This
    # is presumably why the paper left removal as future work.  The bench
    # asserts the defensive floor (pruned GNAT still at least matches an
    # undefended GCN) rather than an improvement.
    assert all(s >= gcn - 0.02 for s in scores), (scores, gcn)
