"""Extension bench — GNAT + edge removal (the paper's future work, Sec. VI).

The published GNAT only *adds* edges; the conclusion proposes also
*removing* attacker noise.  This bench implements that proposal (GNAT's
``prune_threshold``: drop edges whose endpoints' cosine feature similarity
is below a threshold before augmenting) and sweeps the threshold on
PEEGA-poisoned Cora next to the published configuration.

Measured outcome: naive similarity pruning removes legitimate dissimilar
edges along with the adversarial ones and *underperforms* add-only GNAT on
these graphs — evidence for why the paper deferred removal to future work.
"""

import os
import time

import numpy as np

from _util import emit, run_once

from repro.core import GNAT
from repro.datasets import load_dataset
from repro.experiments import ExperimentRunner, format_series

THRESHOLDS = [None, 0.01, 0.03, 0.05, 0.1]
QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
# End-to-end prune_graph floors: the scan itself vectorizes ~10x, but the
# surrounding shared work (CSR feature build, graph validation, Graph
# reconstruction) is identical in both variants and bounds the whole-call
# ratio near 1.7x at full scale.
MIN_PRUNE_SPEEDUP = 1.2 if QUICK else 1.4
PRUNE_SCALE = 0.5 if QUICK else 1.0
PRUNE_REPEATS = 2 if QUICK else 3


def test_ext_gnat_prune(benchmark):
    runner = ExperimentRunner()

    def run():
        poisoned = runner.attack("cora", "PEEGA").poisoned
        scores = []
        for threshold in THRESHOLDS:
            cell = runner.evaluate_defender(
                poisoned,
                "cora",
                "GNAT",
                defender_factory=lambda seed, t=threshold: GNAT(
                    prune_threshold=t, seed=seed
                ),
            )
            scores.append(cell.mean)
        gcn = runner.evaluate_defender(poisoned, "cora", "GCN").mean
        return scores, gcn

    scores, gcn = run_once(benchmark, run)
    text = format_series(
        "prune_thr",
        ["off"] + THRESHOLDS[1:],
        {"GNAT accuracy": scores, "GCN (no defense)": [gcn] * len(scores)},
        title=(
            "Extension — GNAT with adversarial-edge pruning on PEEGA-poisoned "
            "Cora (paper Sec. VI future work: add AND remove)"
        ),
    )
    emit("ext_gnat_prune", text)
    # Finding: naive similarity pruning is NOT a free win here — the
    # synthetic graphs (like real ones) contain legitimately dissimilar
    # clean edges, so pruning trades attack edges for real structure.  This
    # is presumably why the paper left removal as future work.  The bench
    # asserts the defensive floor (pruned GNAT still at least matches an
    # undefended GCN) rather than an improvement.
    assert all(s >= gcn - 0.02 for s in scores), (scores, gcn)


# ---------------------------------------------------------------------------
# Vectorized pruning: one-array-pass edge scan vs the per-edge Python loop


def _reference_prune(graph, threshold):
    """The original per-edge implementation of ``GNAT.prune_graph``.

    Includes everything the real method does (graph rebuild + contract
    validation) so the measured ratio is the honest end-to-end one.
    """
    from repro.defenses.base import validate_pruned_graph

    features = graph.features
    norms = np.linalg.norm(features, axis=1)
    norms[norms == 0] = 1.0
    adjacency = graph.adjacency.tolil(copy=True)
    removed = 0
    for u, v in graph.edge_list():
        cosine = float(features[u] @ features[v] / (norms[u] * norms[v]))
        if cosine < threshold:
            adjacency[u, v] = 0.0
            adjacency[v, u] = 0.0
            removed += 1
    pruned = graph.with_adjacency(adjacency.tocsr())
    return validate_pruned_graph(pruned, "GNAT"), removed


def test_ext_gnat_prune_vectorized(benchmark):
    """The vectorized prune drops the SAME edges, faster end to end."""
    graph = load_dataset("cora", scale=PRUNE_SCALE)
    defender = GNAT(prune_threshold=0.05)

    def run():
        best = {"loop": None, "vectorized": None}
        for _ in range(PRUNE_REPEATS):
            start = time.process_time()
            reference, removed_ref = _reference_prune(graph, defender.prune_threshold)
            elapsed = time.process_time() - start
            best["loop"] = min(elapsed, best["loop"] or elapsed)
            start = time.process_time()
            pruned = defender.prune_graph(graph)
            elapsed = time.process_time() - start
            best["vectorized"] = min(elapsed, best["vectorized"] or elapsed)
        return best, reference, removed_ref, pruned

    best, reference, removed_ref, pruned = run_once(benchmark, run)

    # Same result, bit for bit: identical removal count and sparsity.
    assert defender._last_pruned_edges == removed_ref > 0
    difference = (pruned.adjacency != reference.adjacency).nnz
    assert difference == 0, f"{difference} adjacency entries differ"

    speedup = best["loop"] / best["vectorized"]
    emit(
        "ext_gnat_prune_vectorized",
        f"Extension — vectorized GNAT edge pruning (cora scale {PRUNE_SCALE}, "
        f"{graph.num_edges} edges): per-edge loop {best['loop']:.4f}s, "
        f"vectorized {best['vectorized']:.4f}s ({speedup:.1f}x)\n",
    )
    assert speedup >= MIN_PRUNE_SPEEDUP, (
        f"vectorized prune only {speedup:.2f}x faster "
        f"({best['loop']:.4f}s loop vs {best['vectorized']:.4f}s vectorized)"
    )
