"""Table VIII — training time of each defender on the clean graphs.

Paper shape: raw GCN is fastest; GNAT costs only slightly more (three
augmented views through one GCN); attention/similarity methods (GAT, RGCN,
SimPGCN) and the SVD preprocessing cost more; Pro-GNN is orders of magnitude
slower (per-epoch SVD + joint structure learning).
"""

from _util import emit, emit_json, run_once, table_stats

from repro.datasets import dataset_names
from repro.experiments import defender_timings, format_timing_table


def test_table8_defender_time(benchmark):
    datasets = dataset_names()
    timings = run_once(benchmark, lambda: defender_timings(datasets, repeats=2))
    emit(
        "table8_defense_time",
        format_timing_table(
            timings, title="Table VIII — defender training time (seconds)"
        ),
    )
    emit_json(
        "BENCH_table8_defense_time.json",
        {"unit": "seconds", "rows": table_stats(timings)},
    )
    for dataset in datasets:
        gcn = timings["GCN"][dataset].mean
        assert timings["Pro-GNN"][dataset].mean > gcn, timings
        # GNAT stays within a small factor of raw GCN (paper: ~2x).
        assert timings["GNAT"][dataset].mean < 12 * gcn + 1.0, timings
