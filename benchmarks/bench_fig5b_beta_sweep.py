"""Fig 5(b) — feature-perturbation cost β sweep on Cora.

The budget constraint becomes ``||Â−A||_0 + β||X̂−X||_0 ≤ δ`` and the
feature score is normalized by β.  Paper: as β grows, feature flips become
less attractive (their count falls, edge flips rise); GCN accuracy dips at
intermediate β (a balanced mix is the strongest attack) while GNAT stays
flat and best throughout.
"""

from _util import emit, emit_json, run_once

from repro.attacks import AttackBudget
from repro.core import PEEGA
from repro.experiments import ExperimentRunner, format_series

BETAS = [0.1, 0.3, 0.5, 0.7, 1.0]


def test_fig5b_beta_sweep(benchmark):
    runner = ExperimentRunner()

    def run():
        graph = runner.graph("cora")
        delta = round(runner.config.rate * graph.num_edges)
        rows = {"GCN+P": [], "GNAT+P": [], "edge flips": [], "feature flips": []}
        for beta in BETAS:
            budget = AttackBudget(total=float(delta), feature_cost=beta)
            result = PEEGA(seed=0).attack(graph, budget=budget)
            rows["edge flips"].append(float(len(result.edge_flips)))
            rows["feature flips"].append(float(len(result.feature_flips)))
            rows["GCN+P"].append(
                runner.evaluate_defender(result.poisoned, "cora", "GCN").mean
            )
            rows["GNAT+P"].append(
                runner.evaluate_defender(result.poisoned, "cora", "GNAT").mean
            )
        return rows

    rows = run_once(benchmark, run)
    text = format_series(
        "beta",
        BETAS,
        {"GCN+P": rows["GCN+P"], "GNAT+P": rows["GNAT+P"]},
        title="Fig 5(b) — accuracy vs feature cost β on Cora (PEEGA, δ = 0.1·||A||₀)",
    )
    counts = format_series(
        "beta",
        BETAS,
        {"edge flips": rows["edge flips"], "feature flips": rows["feature flips"]},
        percent=False,
    )
    emit("fig5b_beta_sweep", text + "\n" + counts)
    emit_json(
        "BENCH_fig5b_beta_sweep.json",
        {"dataset": "cora", "betas": BETAS, "series": rows},
    )
    # Cheaper features ⇒ at least as many feature flips as at β=1.
    assert rows["feature flips"][0] >= rows["feature flips"][-1], rows
    # GNAT dominates GCN on average across the sweep.
    import numpy as np

    assert np.mean(rows["GNAT+P"]) > np.mean(rows["GCN+P"]) - 0.02, rows
