"""CI perf regression gate over ``repro.bench/1`` reports.

Diffs a freshly generated ``BENCH_*.json`` against the committed baseline
of the same bench and fails (exit 1) when a *normalized* wall-time metric
regresses beyond the threshold.  Raw seconds are useless across runners,
so every check is a ratio measured inside one run, which cancels machine
speed out:

- ``training``: fused CPU seconds / autodiff CPU seconds per model — the
  engines interleave in the same process, so a drift in this ratio means
  the fused kernel itself got slower relative to the oracle.
- ``attack_scale``: attack wall seconds / SBM generation seconds per tier —
  generation is pure single-threaded numpy streaming measured in the same
  run.

The gate also diffs the recursive key sets of the two reports: schema
drift (a renamed or dropped field) fails loudly instead of silently
gating nothing.  A machine-readable diff report is written for the CI
artifact upload.

Usage::

    python benchmarks/perf_gate.py BASELINE FRESH [--report PATH]
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "repro.bench/1"

#: Multiplicative tolerance on the normalized ratio plus additive slack
#: (absorbs near-zero baselines) per bench kind.
THRESHOLDS = {
    "training": (1.5, 0.05),
    "attack_scale": (1.5, 2.0),
}


def keyset(node, prefix: str = "") -> set:
    """Recursive set of dotted key paths (dict containers only)."""
    out = set()
    if isinstance(node, dict):
        for key, value in node.items():
            out.add(prefix + key)
            out |= keyset(value, prefix + key + ".")
    return out


def _training_ratios(report: dict) -> dict[str, float]:
    return {
        name: record["fused_cpu_seconds"] / record["autodiff_cpu_seconds"]
        for name, record in report["models"].items()
    }


def _attack_scale_ratios(report: dict) -> dict[str, float]:
    ratios = {}
    for tier, record in report["tiers"].items():
        for name, attack in record["attacks"].items():
            ratios[f"{tier}/{name}"] = (
                attack["wall_seconds"] / record["generate_seconds"]
            )
    return ratios


_RATIO_EXTRACTORS = {
    "training": _training_ratios,
    "attack_scale": _attack_scale_ratios,
}


def gate(baseline: dict, fresh: dict) -> dict:
    """Compare ``fresh`` against ``baseline``; return the diff report.

    The report's ``failures`` list is empty iff the gate passes.
    """
    failures = []
    for label, report in (("baseline", baseline), ("fresh", fresh)):
        if report.get("schema") != SCHEMA:
            failures.append(
                f"{label} report schema is {report.get('schema')!r}, "
                f"expected {SCHEMA!r}"
            )
    bench = fresh.get("bench")
    if not failures and bench != baseline.get("bench"):
        failures.append(
            f"bench mismatch: baseline {baseline.get('bench')!r} "
            f"vs fresh {bench!r}"
        )

    checks = []
    if not failures:
        # Volatile leaves (timings) share names across reports, so a pure
        # key-path diff catches renamed/dropped fields without pinning
        # values.  "quick" mode changes no keys, only numbers.
        missing = keyset(baseline) - keyset(fresh)
        extra = keyset(fresh) - keyset(baseline)
        if missing or extra:
            failures.append(
                f"schema drift: missing={sorted(missing)} extra={sorted(extra)}"
            )

    if not failures:
        extractor = _RATIO_EXTRACTORS.get(bench)
        if extractor is None:
            failures.append(f"no gate rule for bench kind {bench!r}")
        else:
            tolerance, slack = THRESHOLDS[bench]
            base_ratios = extractor(baseline)
            fresh_ratios = extractor(fresh)
            for name, base_ratio in sorted(base_ratios.items()):
                fresh_ratio = fresh_ratios[name]
                limit = base_ratio * tolerance + slack
                ok = fresh_ratio <= limit
                checks.append(
                    {
                        "name": name,
                        "baseline_ratio": base_ratio,
                        "fresh_ratio": fresh_ratio,
                        "limit": limit,
                        "ok": ok,
                    }
                )
                if not ok:
                    failures.append(
                        f"{name}: normalized wall-time {fresh_ratio:.3f} "
                        f"exceeds limit {limit:.3f} "
                        f"(baseline {base_ratio:.3f})"
                    )

    return {
        "schema": SCHEMA,
        "bench": "perf_gate",
        "gated_bench": bench,
        "checks": checks,
        "failures": failures,
        "passed": not failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("fresh", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--report", default=None, help="write the diff report JSON here"
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)

    report = gate(baseline, fresh)

    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")

    for check in report["checks"]:
        status = "ok" if check["ok"] else "FAIL"
        print(
            f"{check['name']}: {check['fresh_ratio']:.3f} "
            f"<= {check['limit']:.3f} (baseline "
            f"{check['baseline_ratio']:.3f}) {status}"
        )
    for failure in report["failures"]:
        print(f"FAIL: {failure}", file=sys.stderr)
    if report["passed"]:
        print(f"perf gate passed ({len(report['checks'])} checks)")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
