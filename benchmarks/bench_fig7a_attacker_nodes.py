"""Fig 7(a) — attack effectiveness vs fraction of accessible attacker nodes.

PEEGA and Metattack are restricted to modify only a sampled subset of nodes
(edges need an accessible endpoint, features an accessible node).  Paper
shape: with more accessible nodes both attackers get stronger (GCN accuracy
falls), and PEEGA tracks or beats Metattack.
"""

from _util import emit, emit_json, run_once

from repro.attacks import sample_attacker_nodes
from repro.core import PEEGA
from repro.experiments import ExperimentRunner, format_series

RATES = [0.1, 0.25, 0.5, 0.75, 1.0]


def test_fig7a_attacker_nodes(benchmark):
    runner = ExperimentRunner()

    def run():
        graph = runner.graph("cora")
        series = {"GCN+P": []}
        for node_rate in RATES:
            nodes = sample_attacker_nodes(graph, node_rate, seed=1)
            attacker = PEEGA(attacker_nodes=nodes, seed=0)
            poisoned = attacker.attack(
                graph, perturbation_rate=runner.config.rate
            ).poisoned
            series["GCN+P"].append(
                runner.evaluate_defender(poisoned, "cora", "GCN").mean
            )
        return series

    series = run_once(benchmark, run)
    text = format_series(
        "node rate",
        RATES,
        series,
        title="Fig 7(a) — GCN accuracy vs accessible-node rate (PEEGA on Cora)",
    )
    emit("fig7a_attacker_nodes", text)
    emit_json(
        "BENCH_fig7a_attacker_nodes.json",
        {"dataset": "cora", "node_rates": RATES, "series": series},
    )
    # More accessible nodes ⇒ the attack is at least as strong.
    assert series["GCN+P"][-1] <= series["GCN+P"][0] + 0.02, series
