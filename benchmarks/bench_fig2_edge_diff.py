"""Fig 2 — Add/Del × Same/Diff breakdown of each attacker's modifications.

Paper: at perturbation rate 0.1 every effective attacker spends most of its
budget *adding edges between nodes with different labels* (Add+Diff), the
pattern GNAT is designed to resist.
"""

from _util import emit, emit_json, run_once

from repro.analysis import edge_difference
from repro.experiments import (
    ATTACKER_NAMES,
    ExperimentRunner,
    format_series,
)


def test_fig2_edge_diff(benchmark):
    runner = ExperimentRunner()

    def run():
        breakdown = {}
        for name in ATTACKER_NAMES:
            result = runner.attack("cora", name)
            diff = edge_difference(result.original, result.poisoned)
            breakdown[name] = diff
        return breakdown

    breakdown = run_once(benchmark, run)
    series = {
        kind: [breakdown[name].proportions()[kind] for name in ATTACKER_NAMES]
        for kind in ("add_same", "add_diff", "del_same", "del_diff")
    }
    text = format_series(
        "type",
        ATTACKER_NAMES,
        series,
        title=(
            "Fig 2 — edge-modification breakdown on Cora, r=0.1 "
            "(paper: Add+Diff dominates for effective attackers)"
        ),
    )
    emit("fig2_edge_diff", text)
    emit_json(
        "BENCH_fig2_edge_diff.json",
        {
            "dataset": "cora",
            "proportions": {
                name: breakdown[name].proportions() for name in ATTACKER_NAMES
            },
        },
    )
    # The paper's core observation: the strongest attackers (Metattack,
    # PEEGA) mostly add different-label edges.
    for name in ("Metattack", "PEEGA"):
        assert breakdown[name].proportions()["add_diff"] >= 0.5, breakdown[name]
