"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` on modern
pips; offline machines lacking the ``wheel`` distribution can fall back to
``pip install -e . --no-use-pep517`` which routes through this file.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
